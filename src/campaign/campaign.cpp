#include "campaign/campaign.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <filesystem>
#include <limits>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include <thread>

#include "bist/config_canonical.hpp"
#include "bist/pipeline.hpp"
#include "campaign/artefact_store/artefact_store.hpp"
#include "campaign/cache.hpp"
#include "campaign/journal.hpp"
#include "core/contracts.hpp"
#include "core/fault_injection.hpp"
#include "core/random.hpp"
#include "core/task_scheduler.hpp"
#include "core/telemetry.hpp"

namespace sdrbist::campaign {

namespace {

/// splitmix64 finaliser — the standard 64-bit mixing step.  Used to derive
/// scenario seeds from (master seed, grid coordinates) so the stream is a
/// pure function of the grid position, never of execution order.
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

std::uint64_t derive_seed(std::uint64_t master, std::size_t preset_index,
                          std::size_t fault_index, std::size_t trial) {
    std::uint64_t h = mix64(master);
    h = mix64(h ^ (static_cast<std::uint64_t>(preset_index) + 1));
    h = mix64(h ^ (static_cast<std::uint64_t>(fault_index) + 1));
    h = mix64(h ^ (static_cast<std::uint64_t>(trial) + 1));
    return h;
}

/// Rebuild the coverage matrix and population statistics from the result
/// rows.  Shared by run() and merge_results() so a merged result goes
/// through the exact aggregation code path of an unsharded run — the
/// bit-identity guarantee is structural, not re-proven per release.
void aggregate(campaign_result& out) {
    out.matrix.assign(out.preset_names.size(),
                      std::vector<coverage_cell>(out.fault_names.size()));
    out.golden_runs = out.golden_passes = 0;
    out.fault_runs = out.fault_detected = 0;
    out.scenario_cpu_s = 0.0;
    out.scenario_retries = out.scenario_gave_up = 0;
    for (const auto& r : out.results) {
        SDRBIST_EXPECTS(r.sc.preset_index < out.preset_names.size());
        SDRBIST_EXPECTS(r.sc.fault_index < out.fault_names.size());
        coverage_cell& cell = out.matrix[r.sc.preset_index][r.sc.fault_index];
        ++cell.runs;
        if (r.flagged())
            ++cell.flagged;
        if (r.sc.fault == bist::fault_kind::none) {
            ++out.golden_runs;
            if (!r.flagged())
                ++out.golden_passes;
        } else {
            ++out.fault_runs;
            if (r.flagged())
                ++out.fault_detected;
        }
        out.scenario_cpu_s += r.elapsed_s;
        if (r.attempts > 1)
            out.scenario_retries += r.attempts - 1;
        if (r.gave_up)
            ++out.scenario_gave_up;
    }
}

// ---------------------------------------------------------------------------
// Stage pool: planned cross-scenario sharing of pipeline-stage results.
//
// The runner computes every scenario's stage input digests up front and
// keeps one slot per digest that has MORE than one consumer.  The task-DAG
// schedule fills the slots: a dedicated owner node per slot computes the
// stage before any consumer runs (graph dependency), so consumers `peek`
// the finished snapshot without ever blocking.  Cache probes register
// per-slot demand first, letting owners skip stages no pending consumer
// needs, and the lowest-indexed demander is *credited*: its adoption
// stands in for the compute in the reuse accounting, so adopted/computed
// totals stay a pure function of the grid, independent of thread count.
//
// With a stage-artefact store configured, the owner's compute consults
// the store first — a hit publishes the decoded snapshot and still counts
// as the slot's one compute, so the reuse accounting is identical with
// the store cold, warm, or disabled.
//
// Every consumer — including ones served from the scenario result cache,
// which never touch the pool — releases its claim when its scenario
// finishes, and the slot is freed with the last release, so retained
// memory is bounded by the overlap that is still live.
// ---------------------------------------------------------------------------

/// The shareable prefix of the pipeline (grading is always terminal).
constexpr std::array<bist::stage, 4> shareable_stages{
    bist::stage::stimulus, bist::stage::tx_capture,
    bist::stage::calibration, bist::stage::reconstruction};

/// Outcome of a DAG owner node's publish (see stage_slot_map::publish).
enum class publish_status {
    skipped,  ///< no pending consumer demanded the slot (warm cache)
    computed, ///< snapshot published; counts the slot's one compute
    halted,   ///< the flow never reaches this stage; null published
    failed,   ///< compute threw; consumers rethrow it on attempt 1
};

template <typename T>
class stage_slot_map {
public:
    /// Plan phase (single-threaded): register one expected consumer.
    void expect(std::uint64_t digest, std::size_t consumer) {
        plan& p = expected_[digest];
        ++p.consumers;
        p.owner = std::min(p.owner, consumer);
    }

    /// End of plan phase: digests with a single consumer are dropped —
    /// they would cost retention without ever being reused.  With
    /// `auto_demand` (no cache probes) every slot is marked demanded up
    /// front and the lowest planned consumer is credited.
    void finalise_plan(bool auto_demand) {
        for (auto it = expected_.begin(); it != expected_.end();) {
            if (it->second.consumers < 2) {
                it = expected_.erase(it);
            } else {
                slot& s = slots_.try_emplace(it->first).first->second;
                s.remaining = it->second.consumers;
                if (auto_demand) {
                    s.demanded = true;
                    s.credited = it->second.owner;
                }
                ++it;
            }
        }
    }

    /// True when this digest is pooled (read-only after finalise_plan, so
    /// safe to query concurrently).
    [[nodiscard]] bool pooled(std::uint64_t digest) const {
        return expected_.find(digest) != expected_.end();
    }

    /// Probe phase: consumer `index` announces it was not served by the
    /// scenario cache and will adopt this slot.  Runs strictly before the
    /// slot's owner node (graph dependency).  No-op for un-pooled digests.
    void demand(std::uint64_t digest, std::size_t index) {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = slots_.find(digest);
        if (it == slots_.end())
            return;
        it->second.demanded = true;
        it->second.credited = std::min(it->second.credited, index);
    }

    /// Owner node: run `compute` and publish its snapshot (or the
    /// exception it threw) exactly once, before any consumer peeks.
    /// Undemanded slots (every consumer was a cache hit) skip the compute
    /// so a warm run does no stage work.
    template <typename Fn>
    publish_status publish(std::uint64_t digest, Fn&& compute) {
        slot* s = nullptr;
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            const auto it = slots_.find(digest);
            SDRBIST_EXPECTS(it != slots_.end());
            // The slot cannot be erased while its consumers' main nodes —
            // all graph-ordered after this node — still hold claims, and
            // unordered_map references are stable.
            s = &it->second;
            if (!s->demanded) {
                s->done = true;
                return publish_status::skipped;
            }
        }
        std::shared_ptr<const T> value;
        std::exception_ptr error;
        try {
            value = compute();
        } catch (...) {
            error = std::current_exception();
        }
        const std::lock_guard<std::mutex> lock(mutex_);
        s->value = value;
        s->error = error;
        s->done = true;
        return error ? publish_status::failed
                     : (value ? publish_status::computed
                              : publish_status::halted);
    }

    /// A published slot as its consumers see it.  A null snapshot with no
    /// error marks a flow that halts before this stage (so the adopting
    /// scenario's will too).
    struct published_view {
        std::shared_ptr<const T> snapshot;
        std::exception_ptr error;
        std::size_t credited = std::numeric_limits<std::size_t>::max();
    };

    /// Consumer-side read of a published slot; the graph guarantees the
    /// owner node already ran.
    [[nodiscard]] published_view peek(std::uint64_t digest) {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = slots_.find(digest);
        SDRBIST_EXPECTS(it != slots_.end());
        SDRBIST_EXPECTS(it->second.done);
        return {it->second.value, it->second.error, it->second.credited};
    }

    // ----------------------------------------------------------------------

    /// One consumer is done with this digest; frees the slot on the last
    /// release.  No-op for digests that were never pooled.
    void release(std::uint64_t digest) {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = slots_.find(digest);
        if (it == slots_.end())
            return;
        if (--it->second.remaining == 0)
            slots_.erase(it);
    }

private:
    struct plan {
        std::size_t consumers = 0;
        std::size_t owner = std::numeric_limits<std::size_t>::max();
    };
    struct slot {
        std::size_t remaining = 0;
        bool demanded = false;
        bool done = false;
        std::size_t credited = std::numeric_limits<std::size_t>::max();
        std::shared_ptr<const T> value;
        std::exception_ptr error;
    };
    std::mutex mutex_;
    std::unordered_map<std::uint64_t, plan> expected_;
    std::unordered_map<std::uint64_t, slot> slots_;
};

/// Per-scenario digests of the shareable prefix.
using stage_digests = std::array<std::uint64_t, shareable_stages.size()>;

struct stage_pool {
    stage_slot_map<bist::stimulus_output> stimulus;
    stage_slot_map<bist::tx_capture_output> tx_capture;
    stage_slot_map<bist::calibration_output> calibration;
    stage_slot_map<bist::reconstruction_output> reconstruction;

    std::atomic<std::size_t> hits{0};
    std::atomic<std::size_t> computes{0};

    void expect(const stage_digests& d, int depth, std::size_t consumer) {
        if (depth > 0) stimulus.expect(d[0], consumer);
        if (depth > 1) tx_capture.expect(d[1], consumer);
        if (depth > 2) calibration.expect(d[2], consumer);
        if (depth > 3) reconstruction.expect(d[3], consumer);
    }
    void finalise_plan(bool auto_demand) {
        stimulus.finalise_plan(auto_demand);
        tx_capture.finalise_plan(auto_demand);
        calibration.finalise_plan(auto_demand);
        reconstruction.finalise_plan(auto_demand);
    }
    void demand(const stage_digests& d, int depth, std::size_t consumer) {
        if (depth > 0) stimulus.demand(d[0], consumer);
        if (depth > 1) tx_capture.demand(d[1], consumer);
        if (depth > 2) calibration.demand(d[2], consumer);
        if (depth > 3) reconstruction.demand(d[3], consumer);
    }
    [[nodiscard]] bool pooled_at(int level, const stage_digests& d) const {
        switch (level) {
        case 0: return stimulus.pooled(d[0]);
        case 1: return tx_capture.pooled(d[1]);
        case 2: return calibration.pooled(d[2]);
        case 3: return reconstruction.pooled(d[3]);
        default: return false;
        }
    }
    /// Deepest pooled prefix level of `d` (-1 = none).  The prefix-digest
    /// chain makes consumer sets monotone along the pipeline, so pooling
    /// always covers a contiguous prefix.
    [[nodiscard]] int deepest_pooled(const stage_digests& d,
                                     int depth) const {
        int deepest = -1;
        for (int k = 0; k < depth && pooled_at(k, d); ++k)
            deepest = k;
        return deepest;
    }
    void release(const stage_digests& d) {
        stimulus.release(d[0]);
        tx_capture.release(d[1]);
        calibration.release(d[2]);
        reconstruction.release(d[3]);
    }
};

/// Finish a session against the stage-artefact store: adopt whatever the
/// store already holds beyond the stages adopted so far, run the rest,
/// and publish the stages this call actually computed (adopted ones are
/// someone else's publication — the pool owner's, or a previous run's).
/// Store adoption changes *where* a snapshot comes from, never what it
/// is (equal digests, element-exact codec), so the report is untouched.
/// With no store this is exactly session.run().
void run_stages_with_store(bist::bist_session& session,
                           bist::stage_snapshot_store* store) {
    if (store == nullptr) {
        session.run();
        return;
    }
    session.adopt_from_store(*store);
    std::array<bool, bist::stage_order.size()> had{};
    for (const bist::stage s : bist::stage_order)
        had[static_cast<std::size_t>(bist::stage_index(s))] =
            session.completed(s);
    session.run();
    for (const bist::stage s : bist::stage_order)
        if (!had[static_cast<std::size_t>(bist::stage_index(s))] &&
            session.completed(s))
            session.publish_to_store(*store, s);
}

/// DAG owner node: compute pooled slot (`level`, `digests[level]`) on a
/// session built from the owning scenario's config — any consumer's would
/// do, equal digests guarantee equal stage inputs — adopting the already
/// published upstream slots (graph dependencies ran first).  Publishes the
/// snapshot, a null (the flow halts before this stage; every consumer's
/// halts identically), or the exception (consumers rethrow it as their own
/// attempt-1 failure, so the retry path stays per-scenario).
///
/// With a stage-artefact store, the compute consults the store first: a
/// hit publishes the decoded snapshot without touching the pipeline — and
/// still reports `computed`, so the stage-reuse accounting is identical
/// with the store cold, warm, or disabled (a store hit must publish a
/// real snapshot: consumers read null as "the donor's flow halted").  A
/// real compute persists its snapshot for the next run.
void run_owner_node(const campaign_config& cfg, const scenario& owner_sc,
                    const stage_digests& digests, int level,
                    stage_pool& pool, bist::stage_snapshot_store* store) {
    using S = bist::bist_session;
    const auto compute = [&](auto& slot_map, bist::stage target,
                             auto share_fn, auto load_fn) {
        using result_t = decltype((std::declval<S&>().*share_fn)());
        const publish_status status = slot_map.publish(
            digests[bist::stage_index(target)], [&]() -> result_t {
                if (store) {
                    if (auto cached = (store->*load_fn)(
                            digests[bist::stage_index(target)]))
                        return cached;
                }
                S session(scenario_config(cfg, owner_sc));
                const auto adopt = [&](auto& upstream, bist::stage s,
                                       auto adopt_fn) -> bool {
                    const auto v =
                        upstream.peek(digests[bist::stage_index(s)]);
                    if (v.error)
                        std::rethrow_exception(v.error);
                    if (!v.snapshot)
                        return false;
                    (session.*adopt_fn)(v.snapshot);
                    return true;
                };
                const int idx = bist::stage_index(target);
                bool go = true;
                if (go && idx > 0)
                    go = adopt(pool.stimulus, bist::stage::stimulus,
                               &S::adopt_stimulus);
                if (go && idx > 1)
                    go = adopt(pool.tx_capture, bist::stage::tx_capture,
                               &S::adopt_tx_capture);
                if (go && idx > 2)
                    go = adopt(pool.calibration, bist::stage::calibration,
                               &S::adopt_calibration);
                if (!go)
                    return result_t{}; // upstream halted: cascade the null
                session.run_until(target);
                if (store && session.completed(target))
                    session.publish_to_store(*store, target);
                return (session.*share_fn)();
            });
        if (status == publish_status::computed) {
            pool.computes.fetch_add(1, std::memory_order_relaxed);
            telemetry::count(telemetry::counter::stage_computes);
        }
    };
    using store_t = bist::stage_snapshot_store;
    switch (level) {
    case 0:
        compute(pool.stimulus, bist::stage::stimulus, &S::share_stimulus,
                &store_t::load_stimulus);
        break;
    case 1:
        compute(pool.tx_capture, bist::stage::tx_capture,
                &S::share_tx_capture, &store_t::load_tx_capture);
        break;
    case 2:
        compute(pool.calibration, bist::stage::calibration,
                &S::share_calibration, &store_t::load_calibration);
        break;
    case 3:
        compute(pool.reconstruction, bist::stage::reconstruction,
                &S::share_reconstruction, &store_t::load_reconstruction);
        break;
    default:
        break;
    }
}

/// Run one scenario's pipeline under the dag schedule: every pooled
/// prefix slot was published by its owner node before this runs, so
/// adoption is a lock-peek, never a wait.  Attempt 1 inherits a failed
/// owner's exception; retries stop adopting at the failed level and
/// compute privately instead (the slot is not re-armed — transient faults
/// stay per-attempt).  The credited consumer's adoption books no
/// `stage.adopts`: it stands in for the compute the owner node already
/// booked.  Stages below the pooled prefix (multiplicity one, never
/// pooled) go through the stage-artefact store when one is attached.
bist::bist_report run_with_dag(const bist::bist_config& materialised,
                               const stage_digests& digests, int depth,
                               stage_pool& pool, std::size_t attempt,
                               std::size_t my_index,
                               bist::stage_snapshot_store* store) {
    bist::bist_session session(materialised);
    const auto adopt = [&](auto& slot_map, bist::stage s,
                           auto adopt_fn) -> bool {
        const std::uint64_t digest = digests[bist::stage_index(s)];
        if (!slot_map.pooled(digest))
            return false;
        const auto v = slot_map.peek(digest);
        if (v.error) {
            if (attempt <= 1)
                std::rethrow_exception(v.error);
            return false; // retry computes the prefix privately
        }
        if (!v.snapshot)
            return false; // donor halted before this stage; so will we
        telemetry::count(telemetry::counter::sched_adopt_fastpath);
        if (v.credited != my_index) {
            pool.hits.fetch_add(1, std::memory_order_relaxed);
            telemetry::count(telemetry::counter::stage_adopts);
        }
        (session.*adopt_fn)(v.snapshot);
        return true;
    };

    using S = bist::bist_session;
    const bool go =
        depth > 0 &&
        adopt(pool.stimulus, bist::stage::stimulus, &S::adopt_stimulus) &&
        depth > 1 &&
        adopt(pool.tx_capture, bist::stage::tx_capture,
              &S::adopt_tx_capture) &&
        depth > 2 &&
        adopt(pool.calibration, bist::stage::calibration,
              &S::adopt_calibration) &&
        depth > 3 &&
        adopt(pool.reconstruction, bist::stage::reconstruction,
              &S::adopt_reconstruction);
    static_cast<void>(go);

    run_stages_with_store(session, store);
    return session.report();
}

} // namespace

std::vector<scenario> expand_grid(const campaign_config& cfg) {
    SDRBIST_EXPECTS(!cfg.presets.empty());
    SDRBIST_EXPECTS(!cfg.faults.empty());
    SDRBIST_EXPECTS(cfg.trials >= 1);

    std::vector<scenario> grid;
    grid.reserve(cfg.presets.size() * cfg.faults.size() * cfg.trials);
    std::size_t index = 0;
    for (std::size_t p = 0; p < cfg.presets.size(); ++p)
        for (std::size_t f = 0; f < cfg.faults.size(); ++f)
            for (std::size_t t = 0; t < cfg.trials; ++t) {
                scenario sc;
                sc.index = index++;
                sc.preset_index = p;
                sc.fault_index = f;
                sc.trial = t;
                sc.fault = cfg.faults[f];
                sc.preset_name = cfg.presets[p].name;
                sc.seed = derive_seed(cfg.seed, p, f, t);
                grid.push_back(std::move(sc));
            }
    return grid;
}

bist::bist_config scenario_config(const campaign_config& cfg,
                                  const scenario& sc) {
    SDRBIST_EXPECTS(sc.preset_index < cfg.presets.size());
    SDRBIST_EXPECTS(sc.fault_index < cfg.faults.size());

    bist::bist_config out = cfg.base;
    const auto& preset = cfg.presets[sc.preset_index];
    out.preset = preset;
    out.tx = bist::inject_fault(out.tx, sc.fault);

    switch (cfg.reseed) {
    case reseed_policy::device: {
        rng gen(sc.seed);
        out.tx.seed = gen.next_u64();
        out.tiadc.seed = gen.next_u64();
        out.probe_seed = gen.next_u64();
        // Device-population spread.  The gaussians are always drawn so the
        // seed stream does not depend on which perturbations are enabled.
        const double jitter_g = gen.gaussian();
        const double dcde_g = gen.gaussian();
        out.tiadc.jitter_rms_s *=
            std::exp(cfg.perturb.jitter_rel_sigma * jitter_g);
        out.tiadc.delay_element.static_error_s +=
            cfg.perturb.dcde_static_sigma_s * dcde_g;
        break;
    }
    case reseed_policy::probes: {
        // One fixed device, a fresh probe draw per trial.  The draw is a
        // block design: derived from (master seed, trial) only — every
        // preset and fault sees the *same* probe placements per trial, so
        // probe-draw variance never confounds cross-cell comparisons, and
        // the calibration stage stays shareable across the whole grid,
        // not just within one cell.
        rng gen(derive_seed(cfg.seed ^ 0x9E0BE5EEDull, 0, 0, sc.trial));
        out.probe_seed = gen.next_u64();
        break;
    }
    case reseed_policy::off:
        break;
    }

    if (cfg.relax_mask_to_floor) {
        // Keep the mask limits above what this capture hardware can measure
        // at the preset's carrier (paper §II-B3: jitter-induced wideband
        // noise bounds the observable floor).  Uses the *perturbed* jitter:
        // a noisier trial device also has a higher measurement floor.
        const double occupied = preset.stimulus.symbol_rate *
                                (1.0 + preset.stimulus.rolloff);
        const double floor = waveform::bist_measurement_floor_dbc(
            preset.default_carrier_hz, out.tiadc.jitter_rms_s, occupied,
            out.tiadc.channel_rate_hz);
        out.preset.mask =
            waveform::relax_to_measurement_floor(preset.mask, floor);
    }
    return out;
}

const coverage_cell& campaign_result::cell(std::size_t preset_index,
                                           std::size_t fault_index) const {
    SDRBIST_EXPECTS(preset_index < matrix.size());
    SDRBIST_EXPECTS(fault_index < matrix[preset_index].size());
    return matrix[preset_index][fault_index];
}

campaign_runner::campaign_runner(campaign_config config)
    : config_(std::move(config)) {
    SDRBIST_EXPECTS(!config_.presets.empty());
    SDRBIST_EXPECTS(!config_.faults.empty());
    SDRBIST_EXPECTS(config_.trials >= 1);
    SDRBIST_EXPECTS(config_.shard.count >= 1);
    SDRBIST_EXPECTS(config_.shard.index < config_.shard.count);
    SDRBIST_EXPECTS(!config_.lease || config_.lease->begin <= config_.lease->end);
    SDRBIST_EXPECTS(config_.retry_backoff_ms >= 0.0);
    SDRBIST_EXPECTS(config_.scenario_deadline_s >= 0.0);
    SDRBIST_EXPECTS(!config_.resume || !config_.journal_path.empty());
}

campaign_result campaign_runner::run(const run_hooks& hooks) const {
    using clock = std::chrono::steady_clock;

    // Telemetry window baseline: the per-run summary attached to the
    // result is the delta over this run, so concurrent/earlier activity
    // in the process does not leak in (maxima stay process-lifetime:
    // they are not subtractable).
    const bool telemetry_on = telemetry::active();
    const telemetry::summary telemetry_base =
        telemetry_on ? telemetry::snapshot() : telemetry::summary{};

    const auto full_grid = expand_grid(config_);
    SDRBIST_EXPECTS(!config_.lease || config_.lease->end <= full_grid.size());
    std::vector<scenario> grid;
    if (config_.shard.count <= 1 && !config_.lease) {
        grid = full_grid;
    } else {
        for (const auto& sc : full_grid)
            if (config_.shard.contains(sc.index) &&
                (!config_.lease || config_.lease->contains(sc.index)))
                grid.push_back(sc);
    }

    campaign_result out;
    out.trials = config_.trials;
    out.seed = config_.seed;
    out.shard_index = config_.shard.index;
    out.shard_count = config_.shard.count;
    out.grid_size = full_grid.size();
    out.preset_names.reserve(config_.presets.size());
    for (const auto& p : config_.presets)
        out.preset_names.push_back(p.name);
    out.fault_names.reserve(config_.faults.size());
    for (const auto f : config_.faults)
        out.fault_names.push_back(bist::to_string(f));

    std::optional<scenario_cache> cache;
    if (!config_.cache_dir.empty())
        cache.emplace(config_.cache_dir);
    std::atomic<std::size_t> hits{0};
    std::atomic<std::size_t> misses{0};

    // Stage-artefact store: persistent stage outputs keyed by input
    // digest.  Purely an execution knob — a hit swaps a compute for a
    // load of the bit-identical snapshot, so every export is byte-equal
    // with the store cold, warm, or disabled.
    std::optional<stage_artefact_store> store;
    if (!config_.stage_store_dir.empty())
        store.emplace(config_.stage_store_dir);
    bist::stage_snapshot_store* const store_ptr =
        store ? &*store : nullptr;

    out.results.resize(grid.size());

    // Crash-recovery journal.  On resume, rows whose content digest still
    // matches what this config derives are restored in place; everything
    // else (including gave-up / timed-out rows, which are never
    // journalled) is recomputed.  The journal writer truncates any torn
    // trailing line from the crash before appending.
    std::optional<campaign_journal> journal;
    std::vector<char> done(grid.size(), 0);
    std::size_t resumed_count = 0;
    if (!config_.journal_path.empty()) {
        const std::string identity = campaign_identity(config_);
        // Cold start: --resume against a journal that does not exist yet
        // has nothing to restore — fall through and create it fresh (the
        // service worker loop always passes resume, first run included).
        std::error_code journal_ec;
        if (config_.resume &&
            std::filesystem::exists(config_.journal_path, journal_ec)) {
            journal_replay replay = read_journal(config_.journal_path);
            SDRBIST_EXPECTS(replay.identity == identity);
            std::unordered_map<std::size_t, std::size_t> local;
            for (std::size_t i = 0; i < grid.size(); ++i)
                local.emplace(grid[i].index, i);
            for (auto& row : replay.rows) {
                const auto it = local.find(row.result.sc.index);
                if (it == local.end() || done[it->second])
                    continue;
                if (row.result.gave_up || row.result.timed_out)
                    continue; // environment-dependent verdicts: recompute
                bool valid = false;
                try {
                    valid = row.key ==
                            scenario_cache::key(
                                grid[it->second],
                                scenario_config(config_, grid[it->second]));
                } catch (const std::exception&) {
                    // The config is rejected deterministically; the
                    // journalled row must be the matching rejection (it
                    // could never compute a key either).
                    valid = row.key.empty() && row.result.engine_error;
                }
                if (!valid)
                    continue;
                scenario_result& slot = out.results[it->second];
                slot = std::move(row.result);
                slot.sc = grid[it->second];
                done[it->second] = 1;
                ++resumed_count;
            }
        }
        journal.emplace(config_.journal_path, identity, config_.resume);
        // Restored rows are final now — observers see them exactly like
        // freshly-graded ones (the JSONL stream re-emits every row).
        if (hooks.on_scenario)
            for (std::size_t i = 0; i < grid.size(); ++i)
                if (done[i])
                    hooks.on_scenario(out.results[i]);
    }

    // Stage-pool plan: compute the shareable-prefix digests of every
    // scenario this process grades, and pool only the digests more than
    // one scenario needs.  A scenario whose materialisation throws here
    // is left un-pooled — the worker rethrows the identical error into
    // the scenario's result slot, exactly like the unpooled path.
    const int share_depth =
        config_.stage_sharing
            ? std::min<int>(bist::stage_index(*config_.stage_sharing) + 1,
                            static_cast<int>(shareable_stages.size()))
            : 0;
    std::vector<stage_digests> digests;
    stage_pool shared;
    if (share_depth > 0 && grid.size() > 1) {
        const telemetry::scoped_span plan_span(telemetry::category::campaign,
                                               "campaign.plan");
        digests.assign(grid.size(), stage_digests{});
        for (std::size_t i = 0; i < grid.size(); ++i) {
            if (done[i])
                continue; // resumed rows never consume pooled stages
            try {
                const bist::bist_config materialised =
                    scenario_config(config_, grid[i]);
                for (std::size_t k = 0; k < shareable_stages.size(); ++k)
                    digests[i][k] = bist::stage_input_digest(
                        materialised, shareable_stages[k]);
                shared.expect(digests[i], share_depth, i);
            } catch (const std::exception&) {
                digests[i] = stage_digests{};
            }
        }
        // Without cache probes every planned consumer is a real one, so
        // slots are demanded up front.
        shared.finalise_plan(!cache);
    }
    const bool pooling = !digests.empty();

    // Execute the rows the journal did not already cover: each job reads
    // the shared config and writes only its own grid-indexed slot, so
    // thread count cannot affect any result.
    std::vector<std::size_t> pending;
    pending.reserve(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i)
        if (!done[i])
            pending.push_back(i);
    const auto wall_start = clock::now();
    if (!grid.empty()) {
        // Never spawn more workers than there are scenarios.  Report the
        // grid-sized width even when a resume leaves fewer rows pending,
        // so a resumed run's deterministic exports match the original's.
        const std::size_t requested =
            config_.threads ? config_.threads
                            : task_scheduler::default_thread_count();
        out.threads_used = std::min(requested, grid.size());
    }
    // DAG cache probes park a loaded outcome here between the probe node
    // and the scenario's main node (each slot is written by the probe and
    // consumed by the main, which the graph orders after it).
    struct probe_staging {
        bool probed = false;
        std::string key;
        std::optional<scenario_result> outcome;
    };
    std::vector<probe_staging> staged;
    if (!pending.empty()) {
        const auto scenario_body = [&](std::size_t i) {
            scenario_result& slot = out.results[i];
            slot.sc = grid[i];
            // One span covers the whole scenario, retries and backoff
            // included — the span count per run stays one per scenario.
            const telemetry::scoped_span scenario_span(
                telemetry::category::scenario, "scenario", grid[i].index);
            const auto scenario_start = clock::now();
            std::string key;
            bool hit = false;
            // Retry loop: transient failures re-run the attempt with
            // bounded deterministic backoff; contract violations are
            // deterministic rejections and break out immediately.
            for (std::size_t attempt = 1;; ++attempt) {
                slot.attempts = attempt;
                bool transient = false;
                const auto t0 = clock::now();
                // Only scenario materialisation and the engine run belong
                // in the try: a throwing observer hook must propagate (and
                // abort the campaign), never be recorded as this
                // scenario's engine error — that would poison the cache
                // entry.
                try {
                    fault_injection::fire(
                        fault_injection::site::pool_dispatch);
                    const bist::bist_config materialised =
                        scenario_config(config_, grid[i]);
                    // `key.empty()`, not `attempt == 1`: a transient
                    // thrown before the key was derived (dispatch probe,
                    // config materialisation, the load itself) must not
                    // leave a later successful attempt key-less — the
                    // retried result still gets cached below.
                    if (cache && key.empty()) {
                        probe_staging* probed =
                            !staged.empty() && staged[i].probed ? &staged[i]
                                                                : nullptr;
                        if (probed) {
                            // The DAG probe node already did this lookup
                            // (it had to, to register stage demand before
                            // the owner nodes ran) — reuse its outcome.
                            key = probed->key;
                        } else {
                            key = scenario_cache::key(grid[i], materialised);
                        }
                        auto cached = probed ? std::move(probed->outcome)
                                             : cache->load(key);
                        if (cached) {
                            // Restore the graded outcome; `elapsed_s`
                            // keeps the original grading cost, not the
                            // lookup cost, so `scenario_cpu_s` still
                            // reports what the grid costs to compute.
                            slot.report = std::move(cached->report);
                            slot.engine_error = cached->engine_error;
                            slot.error = std::move(cached->error);
                            slot.elapsed_s = cached->elapsed_s;
                            hit = true;
                        }
                    }
                    if (!hit) {
                        // A retry starts clean: only the final attempt's
                        // outcome is this scenario's verdict.
                        slot.engine_error = false;
                        slot.error.clear();
                        if (pooling) {
                            slot.report = run_with_dag(
                                materialised, digests[i], share_depth,
                                shared, attempt, i, store_ptr);
                        } else {
                            bist::bist_session session(materialised);
                            run_stages_with_store(session, store_ptr);
                            slot.report = session.report();
                        }
                    }
                } catch (const contract_violation& e) {
                    // Deterministic config rejection: re-running
                    // reproduces it, so it is final (and safe to cache).
                    slot.engine_error = true;
                    slot.error = e.what();
                    telemetry::count(telemetry::counter::scenario_failures);
                } catch (const std::exception& e) {
                    // Possibly transient (resource exhaustion, I/O,
                    // injected fault): candidate for a retry.
                    slot.engine_error = true;
                    slot.error = e.what();
                    transient = true;
                    telemetry::count(telemetry::counter::scenario_failures);
                }
                if (!hit)
                    slot.elapsed_s =
                        std::chrono::duration<double>(clock::now() - t0)
                            .count();
                if (!hit && config_.scenario_deadline_s > 0.0 &&
                    std::chrono::duration<double>(clock::now() -
                                                  scenario_start)
                            .count() > config_.scenario_deadline_s) {
                    // Over budget — failed-timeout, campaign continues.
                    slot.timed_out = true;
                    slot.engine_error = true;
                    if (slot.error.empty())
                        slot.error = "scenario deadline exceeded";
                    break;
                }
                if (!transient)
                    break;
                if (attempt > config_.max_retries) {
                    slot.gave_up = true;
                    telemetry::count(telemetry::counter::scenario_gave_up);
                    break;
                }
                telemetry::count(telemetry::counter::scenario_retries);
                const double delay_ms =
                    config_.retry_backoff_ms *
                    static_cast<double>(
                        1ull << std::min<std::size_t>(attempt - 1, 20));
                slot.backoff_ms += delay_ms;
                if (delay_ms > 0.0)
                    std::this_thread::sleep_for(
                        std::chrono::duration<double, std::milli>(delay_ms));
            }
            // Give up this scenario's claims on pooled stage results no
            // matter how it finished (cache hit, error, success): the last
            // claim frees the slot.
            if (pooling)
                shared.release(digests[i]);
            // A gave-up or timed-out verdict is environment-dependent —
            // never persisted, so a rerun (or resume) re-attempts it.
            const bool deterministic = !slot.gave_up && !slot.timed_out;
            if (hit) {
                hits.fetch_add(1, std::memory_order_relaxed);
                telemetry::count(telemetry::counter::cache_hits);
            } else {
                misses.fetch_add(1, std::memory_order_relaxed);
                telemetry::count(telemetry::counter::cache_misses);
                if (cache && !key.empty() && deterministic)
                    cache->store(key, slot);
            }
            if (journal && deterministic) {
                std::string journal_key = key;
                if (journal_key.empty()) {
                    try {
                        journal_key = scenario_cache::key(
                            grid[i], scenario_config(config_, grid[i]));
                    } catch (const std::exception&) {
                        // Deterministic rejection: journalled with an
                        // empty key; resume re-validates the same way.
                    }
                }
                journal->append(journal_key, slot);
            }
            if (hooks.on_scenario)
                hooks.on_scenario(slot);
        };

        task_scheduler sched(std::min(out.threads_used, pending.size()));
        if (pooling) {
            // Emit the campaign as a task DAG: pooled stage owners launch
            // topologically first, scenarios adopt their published
            // snapshots without blocking, and work stealing overlaps
            // independent scenarios with pooled-prefix computes.
            task_graph graph;
            // Probe nodes (cache only): look the scenario up and, on a
            // miss (or probe failure), register demand on its pooled
            // prefix — so owners skip stages no pending consumer needs
            // and a warm run does no stage work.
            std::unordered_map<std::uint64_t, std::vector<std::size_t>>
                level0_probes;
            if (cache) {
                staged.resize(grid.size());
                for (const std::size_t i : pending) {
                    if (shared.deepest_pooled(digests[i], share_depth) < 0)
                        continue;
                    const std::size_t node = graph.add([&, i] {
                        probe_staging st;
                        try {
                            const bist::bist_config materialised =
                                scenario_config(config_, grid[i]);
                            st.key =
                                scenario_cache::key(grid[i], materialised);
                            st.outcome = cache->load(st.key);
                            st.probed = true;
                        } catch (const std::exception&) {
                            st = {}; // the main node redoes the lookup
                        }
                        if (!st.probed || !st.outcome)
                            shared.demand(digests[i], share_depth, i);
                        staged[i] = std::move(st);
                    });
                    level0_probes[digests[i][0]].push_back(node);
                }
            }
            // Owner nodes: one per pooled slot, level by level.  owner(k)
            // depends on owner(k-1) of the same prefix, which transitively
            // covers every consumer probe hung off level 0 — so a slot is
            // published before anything peeks it, with its demand settled.
            std::array<std::unordered_map<std::uint64_t, std::size_t>,
                       shareable_stages.size()>
                owner_node;
            for (int k = 0; k < share_depth; ++k) {
                for (const std::size_t i : pending) {
                    if (shared.deepest_pooled(digests[i], share_depth) < k)
                        continue;
                    const std::uint64_t d = digests[i][k];
                    if (owner_node[k].count(d) != 0)
                        continue;
                    std::vector<std::size_t> deps;
                    if (k > 0)
                        deps.push_back(
                            owner_node[k - 1].at(digests[i][k - 1]));
                    else if (cache)
                        deps = level0_probes.at(d);
                    // `i` is the lowest pending consumer: the owner binds
                    // to its config (any consumer's is digest-equal).
                    owner_node[k][d] = graph.add(
                        [&, i, k] {
                            run_owner_node(config_, grid[i], digests[i], k,
                                           shared, store_ptr);
                        },
                        deps);
                }
            }
            // Main nodes: a scenario waits only on the owner of its
            // deepest pooled slot; the owner chain orders the rest.
            for (const std::size_t i : pending) {
                const int deepest =
                    shared.deepest_pooled(digests[i], share_depth);
                std::vector<std::size_t> deps;
                if (deepest >= 0)
                    deps.push_back(
                        owner_node[static_cast<std::size_t>(deepest)].at(
                            digests[i][static_cast<std::size_t>(deepest)]));
                graph.add([&, i] { scenario_body(i); }, deps);
            }
            sched.run(std::move(graph));
        } else {
            // Nothing pooled: a flat dependency-free graph — every
            // scenario runs its own session end to end.
            sched.parallel_for(pending.size(), [&](std::size_t pi) {
                scenario_body(pending[pi]);
            });
        }
    }
    out.wall_s =
        std::chrono::duration<double>(clock::now() - wall_start).count();
    out.cache_hits = hits.load();
    out.cache_misses = misses.load();
    out.resumed = resumed_count;
    out.quarantined = cache ? cache->quarantined() : 0;
    out.stage_reuse_hits = shared.hits.load();
    out.stage_reuse_computes = shared.computes.load();
    if (store) {
        out.store_hits = store->hits();
        out.store_misses = store->misses();
        out.store_bytes = store->bytes_served();
        out.quarantined += store->quarantined();
    }
    if (telemetry_on)
        out.telemetry_summary = telemetry::since(telemetry_base);

    // Aggregate in grid order (deterministic regardless of completion order).
    aggregate(out);
    return out;
}

namespace {

/// Shared core of the strict and salvage merges.  `salvage == nullptr`
/// keeps the historical contract (any inconsistency throws);  otherwise
/// inconsistencies are dropped, counted and noted, and incomplete
/// coverage yields a partial result.
campaign_result merge_impl(const std::vector<campaign_result>& shards,
                           salvage_stats* salvage) {
    const telemetry::scoped_span span(telemetry::category::shard,
                                      "shard.merge");
    fault_injection::fire(fault_injection::site::shard_merge);
    SDRBIST_EXPECTS(!shards.empty());
    const campaign_result& first = shards.front();

    campaign_result out;
    out.preset_names = first.preset_names;
    out.fault_names = first.fault_names;
    out.trials = first.trials;
    out.seed = first.seed;
    out.shard_index = 0;
    out.shard_count = 1;
    out.grid_size = first.grid_size;

    std::size_t total_rows = 0;
    std::vector<const campaign_result*> usable;
    usable.reserve(shards.size());
    for (std::size_t s = 0; s < shards.size(); ++s) {
        const campaign_result& shard = shards[s];
        // Every shard must describe the same campaign.
        if (salvage == nullptr) {
            SDRBIST_EXPECTS(shard.preset_names == out.preset_names);
            SDRBIST_EXPECTS(shard.fault_names == out.fault_names);
            SDRBIST_EXPECTS(shard.trials == out.trials);
            SDRBIST_EXPECTS(shard.seed == out.seed);
            SDRBIST_EXPECTS(shard.grid_size == out.grid_size);
        } else if (shard.preset_names != out.preset_names ||
                   shard.fault_names != out.fault_names ||
                   shard.trials != out.trials || shard.seed != out.seed ||
                   shard.grid_size != out.grid_size) {
            ++salvage->skipped_shards;
            salvage->notes.push_back("skipped shard " + std::to_string(s) +
                                     ": campaign axes do not match shard 0");
            continue;
        }
        usable.push_back(&shard);
        total_rows += shard.results.size();
        // Measured fields combine conservatively: the merged wall time is
        // the sequential-equivalent sum (shards may have run anywhere).
        out.wall_s += shard.wall_s;
        out.threads_used = std::max(out.threads_used, shard.threads_used);
        out.cache_hits += shard.cache_hits;
        out.cache_misses += shard.cache_misses;
        out.stage_reuse_hits += shard.stage_reuse_hits;
        out.stage_reuse_computes += shard.stage_reuse_computes;
        out.store_hits += shard.store_hits;
        out.store_misses += shard.store_misses;
        out.store_bytes += shard.store_bytes;
        out.resumed += shard.resumed;
        out.quarantined += shard.quarantined;
        out.telemetry_summary.merge_from(shard.telemetry_summary);
    }
    if (salvage == nullptr)
        SDRBIST_EXPECTS(total_rows == out.grid_size);

    // Scatter rows back into grid order; duplicate or out-of-range indices
    // mean two shards graded the same scenario — contract violations on
    // the strict path, dropped (first shard wins) when salvaging.
    out.results.resize(out.grid_size);
    std::vector<bool> filled(out.grid_size, false);
    std::size_t filled_count = 0;
    for (const campaign_result* shard : usable)
        for (const auto& r : shard->results) {
            if (salvage == nullptr) {
                SDRBIST_EXPECTS(r.sc.index < out.grid_size);
                SDRBIST_EXPECTS(!filled[r.sc.index]);
            } else if (r.sc.index >= out.grid_size || filled[r.sc.index]) {
                ++salvage->duplicate_rows;
                salvage->notes.push_back(
                    r.sc.index >= out.grid_size
                        ? "dropped out-of-range scenario row " +
                              std::to_string(r.sc.index)
                        : "dropped duplicate scenario row " +
                              std::to_string(r.sc.index));
                continue;
            }
            filled[r.sc.index] = true;
            ++filled_count;
            out.results[r.sc.index] = r;
        }
    if (salvage != nullptr && filled_count < out.grid_size) {
        salvage->missing_rows = out.grid_size - filled_count;
        std::vector<scenario_result> partial;
        partial.reserve(filled_count);
        for (std::size_t i = 0; i < out.grid_size; ++i)
            if (filled[i])
                partial.push_back(std::move(out.results[i]));
        out.results = std::move(partial);
    }

    aggregate(out);
    return out;
}

} // namespace

campaign_result merge_results(const std::vector<campaign_result>& shards) {
    return merge_impl(shards, nullptr);
}

campaign_result merge_results_salvage(const std::vector<campaign_result>& shards,
                                      salvage_stats& stats) {
    // Shard 0 is the axis reference, so at least one shard always merges;
    // unreadable *files* never get this far (read_result_files_salvage
    // quarantines them).
    return merge_impl(shards, &stats);
}

} // namespace sdrbist::campaign

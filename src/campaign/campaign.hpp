/// \file campaign.hpp
/// \brief Parallel BIST campaigns: declarative scenario grids graded at
///        production scale.
///
/// The paper's claim is *flexibility* — one BIST architecture for any
/// standard and any fault.  A campaign makes that claim measurable: it
/// expands a grid of standard presets × injected faults × Monte-Carlo
/// trials into independent `bist_engine` jobs, executes them on a thread
/// pool, and aggregates the reports into a fault-coverage matrix plus
/// yield/escape statistics.
///
/// Determinism contract: every scenario's seeds are derived from the
/// campaign master seed and the scenario's *grid coordinates* (never from
/// execution order), and results land in grid-indexed slots — so the
/// coverage matrix is bit-identical at 1 thread and at N threads.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bist/engine.hpp"
#include "bist/faults.hpp"
#include "bist/stages.hpp"
#include "core/telemetry.hpp"
#include "waveform/standard.hpp"

namespace sdrbist::campaign {

/// Deterministic partition of the expanded grid for distributed execution.
/// Shard k of K owns every scenario whose grid index ≡ k (mod K) — a
/// round-robin split, so presets of very different cost spread evenly
/// across shards.  Grid-coordinate seed derivation makes shards fully
/// independent; `merge_results()` recombines them bit-identically.
struct shard_spec {
    std::size_t index = 0; ///< this shard's id, in [0, count)
    std::size_t count = 1; ///< total shards; 1 = the whole grid

    [[nodiscard]] bool contains(std::size_t scenario_index) const {
        return scenario_index % count == index;
    }
};

/// Contiguous half-open slice [begin, end) of the expanded grid, applied
/// on top of `shard_spec` filtering.  The distributed campaign service
/// leases these ranges to workers; `merge_results()` accepts any
/// exact-coverage partition, so contiguous slices recombine exactly like
/// mod-K shards.  Excluded from the journal identity (like the other
/// execution knobs): one worker journal spans every lease it executes.
struct lease_range {
    std::size_t begin = 0;
    std::size_t end = 0; ///< exclusive

    [[nodiscard]] bool contains(std::size_t scenario_index) const {
        return scenario_index >= begin && scenario_index < end;
    }
    [[nodiscard]] std::size_t size() const { return end - begin; }
};

/// How Monte-Carlo trials derive their randomness from the per-scenario
/// seed (see `scenario_config`).
enum class reseed_policy {
    /// Fresh device seeds per trial (tx, tiadc, probes) plus the
    /// `trial_perturbation` spread: every trial is a different physical
    /// device.  The historical default.
    device,
    /// Fresh probe placement only: device seeds stay at `base`, so trials
    /// measure the skew estimator's sensitivity to the random probe draw
    /// (the paper's N random instants) on one fixed device — and the
    /// stimulus/Tx/capture pipeline stages stay bit-identical across
    /// trials, which the runner's stage pool turns into shared work.
    probes,
    /// No reseeding: every scenario keeps the seeds of `base` (legacy
    /// `run_catalogue` semantics).
    off,
};

/// Monte-Carlo perturbations applied per trial on top of the derived seeds
/// (device-to-device spread a production population would show).  Only
/// meaningful under `reseed_policy::device`.
struct trial_perturbation {
    /// Log-normal sigma on the TIADC sampling jitter: per trial the rms
    /// jitter is multiplied by exp(N(0, sigma)).  0 = no spread.
    double jitter_rel_sigma = 0.0;
    /// Gaussian DCDE static-error spread (seconds rms) added to the delay
    /// element per trial.  0 = no spread.
    double dcde_static_sigma_s = 0.0;
};

/// Declarative scenario grid.  The expanded grid is ordered preset-major,
/// then fault, then trial — `scenario::index` is the row number.
struct campaign_config {
    bist::bist_config base{};               ///< shared engine configuration
    std::vector<waveform::standard_preset> presets =
        waveform::standard_catalogue();
    std::vector<bist::fault_kind> faults = bist::fault_catalogue();
    std::size_t trials = 1;                 ///< Monte-Carlo repeats per cell

    std::uint64_t seed = 0x5EEDC0DE;        ///< campaign master seed
    /// What per-scenario reseeding derives from `seed` and the grid
    /// coordinates (`device` = the historical `reseed_trials = true`,
    /// `off` = the historical `false`).
    reseed_policy reseed = reseed_policy::device;
    trial_perturbation perturb{};

    /// Deepest pipeline stage whose results the runner pools across
    /// scenarios (prefix sharing: a stage is adopted only when every stage
    /// upstream of it is too).  The pool is *planned*: stage input digests
    /// are computed for the whole (shard's) grid up front, only results
    /// with more than one consumer are ever retained, and each entry is
    /// dropped the moment its last consumer finishes — so memory is
    /// bounded by the actual overlap, and grids with no overlap (e.g.
    /// fully device-reseeded trials) pay nothing.  Results are bit-
    /// identical with sharing on, off, or at any level (equal digests
    /// guarantee equal outputs).  nullopt disables pooling entirely.
    std::optional<bist::stage> stage_sharing = bist::stage::reconstruction;

    /// Relax each preset's mask to the jitter measurement floor at the
    /// preset carrier (paper §II-B3), as `run_catalogue` always did.
    bool relax_mask_to_floor = true;

    std::size_t threads = 0;                ///< worker count; 0 = hardware

    /// Portion of the grid this process grades (default: all of it).
    shard_spec shard{};
    /// Optional contiguous grid slice graded by this run, composed with
    /// `shard` (a scenario runs when both filters accept it).  This is the
    /// campaign service's lease unit; nullopt = no slicing.
    std::optional<lease_range> lease;
    /// On-disk scenario result cache directory; empty = caching disabled.
    /// Keys are content hashes of the materialised per-scenario engine
    /// config (see campaign/cache.hpp), so overlapping grids and repeated
    /// runs skip already-graded scenarios.
    std::string cache_dir;
    /// On-disk stage-artefact store directory; empty = store disabled.
    /// Intermediate stage outputs are published keyed by their chained
    /// input digests (campaign/artefact_store/) and adopted on later runs
    /// — a warm run skips the stage computes themselves, even for
    /// scenarios the result cache cannot serve.  Like `cache_dir`, an
    /// execution knob: never part of the cache key or journal identity,
    /// and exports stay byte-identical with the store cold, warm, or
    /// disabled.
    std::string stage_store_dir;

    // Failure containment (see also core/fault_injection.hpp, which makes
    // these paths testable on demand).

    /// Transient (`std::exception`) engine failures are re-run up to this
    /// many extra attempts per scenario.  Contract violations are
    /// deterministic rejections and are never retried.  0 disables retry.
    std::size_t max_retries = 2;
    /// Base of the bounded deterministic backoff between attempts: retry
    /// k sleeps `retry_backoff_ms * 2^(k-1)` milliseconds (recorded in
    /// `scenario_result::backoff_ms`).
    double retry_backoff_ms = 1.0;
    /// Per-scenario wall-clock budget in seconds, covering every attempt
    /// plus backoff.  An over-budget scenario is marked failed
    /// (`timed_out`) without killing the campaign; its verdict is
    /// environment-dependent, so it is never cached or journalled.
    /// 0 = no deadline.
    double scenario_deadline_s = 0.0;
    /// Crash-recovery journal path (see campaign/journal.hpp); empty = no
    /// journal.  Completed scenarios are appended as fsync'd JSONL lines.
    std::string journal_path;
    /// Resume from `journal_path`: previously journalled scenarios are
    /// restored (after their content digests re-validate) and only the
    /// missing rows are computed — exports are byte-identical to an
    /// uninterrupted run.  Requires `journal_path`.
    bool resume = false;
};

/// One expanded grid row.
struct scenario {
    std::size_t index = 0;        ///< row in the expanded grid
    std::size_t preset_index = 0; ///< into campaign_config::presets
    std::size_t fault_index = 0;  ///< into campaign_config::faults
    std::size_t trial = 0;        ///< Monte-Carlo trial number
    bist::fault_kind fault = bist::fault_kind::none;
    std::string preset_name;
    std::uint64_t seed = 0;       ///< derived scenario seed (grid-stable)
};

/// Outcome of one scenario.
struct scenario_result {
    scenario sc{};
    bist::bist_report report{};
    bool engine_error = false; ///< config rejected / engine threw
    std::string error;         ///< exception text when engine_error
    double elapsed_s = 0.0;    ///< wall time of the last engine attempt

    // Failure-containment accounting (attempts >= 1 always; > 1 means the
    // retry loop engaged).  A `gave_up` or `timed_out` row also has
    // `engine_error` set and carries the last attempt's error text.
    std::size_t attempts = 1; ///< engine attempts consumed
    double backoff_ms = 0.0;  ///< total deterministic backoff slept
    bool gave_up = false;     ///< still transient-failing after every retry
    bool timed_out = false;   ///< scenario_deadline_s exceeded

    /// FAIL verdict (an injected fault should flip this to true).
    [[nodiscard]] bool flagged() const { return engine_error || !report.pass(); }
};

/// One cell of the fault-coverage matrix: all trials of (preset, fault).
struct coverage_cell {
    std::size_t runs = 0;
    std::size_t flagged = 0; ///< FAIL verdicts among the runs

    /// Detection rate for fault columns; false-alarm rate for `none`.
    [[nodiscard]] double fail_rate() const {
        return runs == 0 ? 0.0
                         : static_cast<double>(flagged) /
                               static_cast<double>(runs);
    }
    [[nodiscard]] double pass_rate() const { return 1.0 - fail_rate(); }
};

/// Aggregated campaign artefacts.
struct campaign_result {
    // Echo of the grid axes (for export and rendering).
    std::vector<std::string> preset_names;
    std::vector<std::string> fault_names;
    std::size_t trials = 0;
    std::uint64_t seed = 0;
    std::size_t threads_used = 0;

    // Shard bookkeeping.  A full (or merged) result is shard 0 of 1;
    // `grid_size` is always the size of the *full* expanded grid, so
    // `results.size() < grid_size` identifies a partial (shard) result.
    std::size_t shard_index = 0;
    std::size_t shard_count = 1;
    std::size_t grid_size = 0;

    // Result-cache accounting for this run (both 0 when caching is off).
    // Environment-dependent like the timing fields: a warm rerun flips
    // misses into hits, so exporters treat these as measured data.
    std::size_t cache_hits = 0;
    std::size_t cache_misses = 0;

    // Stage-artefact store accounting for this run (all 0 when
    // `stage_store_dir` is empty).  Measured data like the cache
    // counters: a warm rerun flips misses into hits.  Exactly equal to
    // the `store.*` telemetry counters the run emitted (`store_bytes` is
    // the raw bytes served by the hits).
    std::size_t store_hits = 0;
    std::size_t store_misses = 0;
    std::uintmax_t store_bytes = 0;

    // Stage-pool accounting (both 0 when `stage_sharing` is off or the
    // grid has no overlap).  Unlike the cache counters these are
    // deterministic — the pool is planned from digest multiplicities, so
    // adopted/computed totals are a pure function of the grid and sharing
    // level, independent of thread count and completion order.
    std::size_t stage_reuse_hits = 0;     ///< pooled stage results adopted
    std::size_t stage_reuse_computes = 0; ///< pooled stage results computed

    // Failure-containment accounting.  `scenario_retries` (sum of
    // attempts-1 over the rows) and `scenario_gave_up` are derived from
    // the scenario rows, so they merge through shards for free; `resumed`
    // and `quarantined` are per-run measured data like the cache counters
    // (a resumed rerun flips computes into restores) and sum across
    // shards.
    std::size_t scenario_retries = 0; ///< attempts re-run after transients
    std::size_t scenario_gave_up = 0; ///< rows that exhausted every retry
    std::size_t resumed = 0;          ///< rows restored from a journal
    std::size_t quarantined = 0;      ///< corrupt input files quarantined

    // Telemetry window of this run: per-category span aggregates (stage
    // costs, pool waits, cache I/O, worker idle) captured between run
    // start and end.  All zeros when telemetry was off.  Measured data
    // like the timing fields; merge_results combines additively
    // (telemetry::summary::merge_from), so sharded runs aggregate like
    // unsharded ones.
    telemetry::summary telemetry_summary{};

    /// Per-scenario outcomes in grid order (deterministic).  For a shard
    /// result these are only the shard's rows (still ascending by index).
    std::vector<scenario_result> results;
    /// matrix[preset][fault] — detection rates per cell.
    std::vector<std::vector<coverage_cell>> matrix;

    // Population statistics.
    std::size_t golden_runs = 0;    ///< scenarios with fault == none
    std::size_t golden_passes = 0;  ///< of which PASS (yield)
    std::size_t fault_runs = 0;     ///< scenarios with an injected fault
    std::size_t fault_detected = 0; ///< of which FAIL (coverage)

    // Timing.
    double wall_s = 0.0;         ///< end-to-end campaign wall time
    double scenario_cpu_s = 0.0; ///< sum of per-scenario engine times

    [[nodiscard]] std::size_t scenario_count() const { return results.size(); }
    /// Fraction of golden devices passing (production yield proxy).
    [[nodiscard]] double yield() const {
        return golden_runs == 0 ? 0.0
                                : static_cast<double>(golden_passes) /
                                      static_cast<double>(golden_runs);
    }
    /// Fraction of faulty devices flagged.
    [[nodiscard]] double coverage() const {
        return fault_runs == 0 ? 0.0
                               : static_cast<double>(fault_detected) /
                                     static_cast<double>(fault_runs);
    }
    /// Fraction of faulty devices shipped (1 - coverage).
    [[nodiscard]] double escape_rate() const {
        return fault_runs == 0 ? 0.0 : 1.0 - coverage();
    }
    [[nodiscard]] double scenarios_per_second() const {
        return wall_s <= 0.0 ? 0.0
                             : static_cast<double>(results.size()) / wall_s;
    }
    [[nodiscard]] const coverage_cell& cell(std::size_t preset_index,
                                            std::size_t fault_index) const;
};

/// Expand the grid (preset-major, then fault, then trial) with derived
/// per-scenario seeds.  Pure function of the config.
std::vector<scenario> expand_grid(const campaign_config& cfg);

/// Materialise the engine configuration for one scenario: preset applied
/// (mask optionally relaxed to the measurement floor, per-preset
/// `acpr_offset_hz` preserved), fault injected, seeds/perturbations derived.
bist::bist_config scenario_config(const campaign_config& cfg,
                                  const scenario& sc);

/// Observers the runner invokes while a campaign executes.
struct run_hooks {
    /// Called once per scenario the moment its result slot is final
    /// (engine run finished, cache hit, or restored from a resumed
    /// journal).  Invoked concurrently from
    /// worker threads in completion order — the callee must synchronise
    /// (campaign::jsonl_stream does).  The reference is only valid for the
    /// duration of the call.
    std::function<void(const scenario_result&)> on_scenario;
};

/// Executes campaigns on a fixed thread pool.
class campaign_runner {
public:
    explicit campaign_runner(campaign_config config);

    /// Run the configured portion of the grid (all of it by default; the
    /// shard's rows when `config.shard` says so).  Results are in grid
    /// order and bit-identical for any thread count; with `cache_dir` set,
    /// already-graded scenarios are restored from disk instead of re-run.
    [[nodiscard]] campaign_result run() const { return run(run_hooks{}); }
    [[nodiscard]] campaign_result run(const run_hooks& hooks) const;

    [[nodiscard]] const campaign_config& config() const { return config_; }

private:
    campaign_config config_;
};

/// Recombine per-shard results into one full-grid result that is
/// bit-identical (coverage matrix, yield/escape statistics, scenario rows,
/// timing-free exports) to running the whole grid unsharded.  The shards
/// must share the grid axes and together cover every scenario index exactly
/// once; otherwise contract_violation.  Shard order does not matter.
/// Measured fields are combined conservatively: wall times and cache
/// counters sum, `threads_used` takes the maximum.
campaign_result merge_results(const std::vector<campaign_result>& shards);

/// What the lenient merge dropped or papered over (all zero on clean
/// input).  `notes` holds one human-readable line per incident.
struct salvage_stats {
    std::size_t quarantined_files = 0; ///< unreadable files moved aside
    std::size_t skipped_shards = 0;    ///< shards with mismatched axes
    std::size_t duplicate_rows = 0;    ///< conflicting rows dropped
    std::size_t missing_rows = 0;      ///< grid rows no shard covered
    std::vector<std::string> notes;

    [[nodiscard]] bool clean() const {
        return quarantined_files == 0 && skipped_shards == 0 &&
               duplicate_rows == 0 && missing_rows == 0;
    }
};

/// Lenient variant of `merge_results` for salvaging partially-failed
/// distributed runs: shards with mismatched axes are skipped, duplicate
/// or out-of-range scenario rows are dropped (first shard wins), and
/// incomplete coverage yields a *partial* merged result
/// (`results.size() < grid_size`) instead of a contract violation.  Every
/// concession is counted in `stats`.  Still throws when `shards` is empty
/// or no shard is usable.
campaign_result merge_results_salvage(const std::vector<campaign_result>& shards,
                                      salvage_stats& stats);

} // namespace sdrbist::campaign

#include "campaign/cache.hpp"

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <sstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h> // getpid: temp names must be unique across processes
#endif

#include "bist/config_canonical.hpp"
#include "core/contracts.hpp"
#include "core/fault_injection.hpp"
#include "core/hash.hpp"
#include "core/telemetry.hpp"

namespace sdrbist::campaign {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Report serialisation
// ---------------------------------------------------------------------------

namespace {

/// json_number(NaN/inf) emits null; read it back as quiet NaN.
double num_or_nan(const json_value& v) {
    return v.is_null() ? std::numeric_limits<double>::quiet_NaN()
                       : v.as_number();
}

std::string complex_vector_json(
    const std::vector<std::complex<double>>& values) {
    std::string out = "[";
    for (const auto& z : values) {
        if (out.size() > 1)
            out += ',';
        out += json_number(z.real());
        out += ',';
        out += json_number(z.imag());
    }
    out += ']';
    return out;
}

std::vector<std::complex<double>>
complex_vector_from_json(const json_value& v) {
    const auto& arr = v.as_array();
    SDRBIST_EXPECTS(arr.size() % 2 == 0);
    std::vector<std::complex<double>> out;
    out.reserve(arr.size() / 2);
    for (std::size_t i = 0; i < arr.size(); i += 2)
        out.emplace_back(num_or_nan(arr[i]), num_or_nan(arr[i + 1]));
    return out;
}

std::string skew_json(const calib::skew_estimate& s) {
    json_object_writer o;
    o.number_field("d_hat", s.d_hat);
    o.number_field("final_cost", s.final_cost);
    o.size_field("iterations", s.iterations);
    o.bool_field("converged", s.converged);
    o.size_field("cost_evaluations", s.cost_evaluations);
    std::string trace = "[";
    for (const auto& p : s.trace) {
        if (trace.size() > 1)
            trace += ',';
        json_object_writer t;
        t.size_field("iteration", p.iteration);
        t.number_field("d_hat", p.d_hat);
        t.number_field("cost", p.cost);
        t.number_field("mu", p.mu);
        trace += t.str();
    }
    trace += ']';
    o.field("trace", trace);
    return o.str();
}

calib::skew_estimate skew_from_json(const json_value& v) {
    calib::skew_estimate s;
    s.d_hat = num_or_nan(v.at("d_hat"));
    s.final_cost = num_or_nan(v.at("final_cost"));
    s.iterations = static_cast<std::size_t>(v.at("iterations").as_number());
    s.converged = v.at("converged").as_bool();
    s.cost_evaluations =
        static_cast<std::size_t>(v.at("cost_evaluations").as_number());
    for (const auto& tp : v.at("trace").as_array()) {
        calib::lms_trace_point p;
        p.iteration = static_cast<std::size_t>(tp.at("iteration").as_number());
        p.d_hat = num_or_nan(tp.at("d_hat"));
        p.cost = num_or_nan(tp.at("cost"));
        p.mu = num_or_nan(tp.at("mu"));
        s.trace.push_back(p);
    }
    return s;
}

std::string mask_json(const waveform::mask_report& m) {
    json_object_writer o;
    o.bool_field("pass", m.pass);
    o.number_field("worst_margin_db", m.worst_margin_db);
    o.number_field("reference_dbhz", m.reference_dbhz);
    std::string segments = "[";
    for (const auto& s : m.segments) {
        if (segments.size() > 1)
            segments += ',';
        json_object_writer seg;
        seg.number_field("offset_lo_hz", s.segment.offset_lo_hz);
        seg.number_field("offset_hi_hz", s.segment.offset_hi_hz);
        seg.number_field("limit_dbc", s.segment.limit_dbc);
        seg.number_field("measured_dbc", s.measured_dbc);
        seg.number_field("margin_db", s.margin_db);
        seg.bool_field("pass", s.pass);
        segments += seg.str();
    }
    segments += ']';
    o.field("segments", segments);
    return o.str();
}

waveform::mask_report mask_from_json(const json_value& v) {
    waveform::mask_report m;
    m.pass = v.at("pass").as_bool();
    m.worst_margin_db = num_or_nan(v.at("worst_margin_db"));
    m.reference_dbhz = num_or_nan(v.at("reference_dbhz"));
    for (const auto& sv : v.at("segments").as_array()) {
        waveform::mask_segment_report s;
        s.segment.offset_lo_hz = num_or_nan(sv.at("offset_lo_hz"));
        s.segment.offset_hi_hz = num_or_nan(sv.at("offset_hi_hz"));
        s.segment.limit_dbc = num_or_nan(sv.at("limit_dbc"));
        s.measured_dbc = num_or_nan(sv.at("measured_dbc"));
        s.margin_db = num_or_nan(sv.at("margin_db"));
        s.pass = sv.at("pass").as_bool();
        m.segments.push_back(std::move(s));
    }
    return m;
}

std::string evm_json(const waveform::evm_result& e) {
    json_object_writer o;
    o.number_field("evm_rms", e.evm_rms);
    o.number_field("evm_peak", e.evm_peak);
    o.number_field("gain_re", e.gain.real());
    o.number_field("gain_im", e.gain.imag());
    o.number_field("timing_offset", e.timing_offset);
    o.field("received_symbols", complex_vector_json(e.received_symbols));
    return o.str();
}

waveform::evm_result evm_from_json(const json_value& v) {
    waveform::evm_result e;
    e.evm_rms = num_or_nan(v.at("evm_rms"));
    e.evm_peak = num_or_nan(v.at("evm_peak"));
    e.gain = {num_or_nan(v.at("gain_re")), num_or_nan(v.at("gain_im"))};
    e.timing_offset = num_or_nan(v.at("timing_offset"));
    e.received_symbols = complex_vector_from_json(v.at("received_symbols"));
    return e;
}

} // namespace

std::string report_json(const bist::bist_report& r) {
    json_object_writer o;
    o.string_field("preset_name", r.preset_name);
    o.number_field("carrier_hz", r.carrier_hz);
    o.field("skew", skew_json(r.skew));
    o.number_field("programmed_delay_s", r.programmed_delay_s);
    o.bool_field("dual_rate_conditions_ok", r.dual_rate_conditions_ok);
    o.number_field("max_search_delay_s", r.max_search_delay_s);
    o.number_field("slow_band_offset_hz", r.slow_band_offset_hz);
    o.number_field("fast_band_offset_hz", r.fast_band_offset_hz);
    o.number_field("carrier_nudge_hz", r.carrier_nudge_hz);
    o.number_field("plan_discrimination", r.plan_discrimination);
    o.field("mask", mask_json(r.mask));
    o.field("evm", evm_json(r.evm));
    o.number_field("evm_limit_percent", r.evm_limit_percent);
    o.bool_field("evm_pass", r.evm_pass);
    o.number_field("measured_output_rms", r.measured_output_rms);
    o.number_field("min_output_rms", r.min_output_rms);
    o.bool_field("power_pass", r.power_pass);
    o.number_field("acpr_main_power", r.acpr.main_power);
    o.number_field("acpr_lower_dbc", r.acpr.lower_dbc);
    o.number_field("acpr_upper_dbc", r.acpr.upper_dbc);
    o.number_field("acpr_limit_dbc", r.acpr_limit_dbc);
    o.bool_field("acpr_pass", r.acpr_pass);
    o.number_field("occupied_bw_hz", r.occupied_bw_hz);
    return o.str();
}

bist::bist_report report_from_json(const json_value& v) {
    bist::bist_report r;
    r.preset_name = v.at("preset_name").as_string();
    r.carrier_hz = num_or_nan(v.at("carrier_hz"));
    r.skew = skew_from_json(v.at("skew"));
    r.programmed_delay_s = num_or_nan(v.at("programmed_delay_s"));
    r.dual_rate_conditions_ok = v.at("dual_rate_conditions_ok").as_bool();
    r.max_search_delay_s = num_or_nan(v.at("max_search_delay_s"));
    r.slow_band_offset_hz = num_or_nan(v.at("slow_band_offset_hz"));
    r.fast_band_offset_hz = num_or_nan(v.at("fast_band_offset_hz"));
    r.carrier_nudge_hz = num_or_nan(v.at("carrier_nudge_hz"));
    r.plan_discrimination = num_or_nan(v.at("plan_discrimination"));
    r.mask = mask_from_json(v.at("mask"));
    r.evm = evm_from_json(v.at("evm"));
    r.evm_limit_percent = num_or_nan(v.at("evm_limit_percent"));
    r.evm_pass = v.at("evm_pass").as_bool();
    r.measured_output_rms = num_or_nan(v.at("measured_output_rms"));
    r.min_output_rms = num_or_nan(v.at("min_output_rms"));
    r.power_pass = v.at("power_pass").as_bool();
    r.acpr.main_power = num_or_nan(v.at("acpr_main_power"));
    r.acpr.lower_dbc = num_or_nan(v.at("acpr_lower_dbc"));
    r.acpr.upper_dbc = num_or_nan(v.at("acpr_upper_dbc"));
    r.acpr_limit_dbc = num_or_nan(v.at("acpr_limit_dbc"));
    r.acpr_pass = v.at("acpr_pass").as_bool();
    r.occupied_bw_hz = num_or_nan(v.at("occupied_bw_hz"));
    return r;
}

// ---------------------------------------------------------------------------
// Cache lifecycle tooling
// ---------------------------------------------------------------------------

namespace {

/// How a cache-directory file would behave on the next warm run.
enum class entry_class { entry, stale, corrupt, stray_tmp, foreign };

bool is_hex_key(const std::string& stem) {
    if (stem.size() != 16)
        return false;
    for (const char c : stem)
        if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
            return false;
    return true;
}

/// Classify one file the way scenario_cache::load would treat it.  Sets
/// `version` for files that parse far enough to expose a cache_version.
entry_class classify(const fs::path& path, int& version) {
    const std::string filename = path.filename().string();
    // Leftover atomic-publish temp: "<16-hex>.json.tmp.<tag>.<seq>".
    if (filename.size() > 21 && is_hex_key(filename.substr(0, 16)) &&
        filename.compare(16, 10, ".json.tmp.") == 0)
        return entry_class::stray_tmp;
    if (path.extension() != ".json")
        return entry_class::foreign;
    const std::string stem = path.stem().string();
    if (!is_hex_key(stem))
        return entry_class::foreign;

    std::ifstream in(path, std::ios::binary);
    if (!in.good())
        return entry_class::corrupt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
        const json_value doc = parse_json(buffer.str());
        version = static_cast<int>(doc.at("cache_version").as_number());
        if (version != cache_format_version)
            return entry_class::stale;
        if (doc.at("key").as_string() != stem)
            return entry_class::corrupt;
        static_cast<void>(report_from_json(doc.at("report")));
        static_cast<void>(doc.at("engine_error").as_bool());
        return entry_class::entry;
    } catch (const std::exception&) {
        return entry_class::corrupt;
    }
}

template <typename OnRemovable>
cache_dir_stats walk_cache_dir(const std::string& dir,
                               OnRemovable&& on_removable) {
    SDRBIST_EXPECTS(fs::is_directory(dir));
    cache_dir_stats stats;
    for (const auto& entry : fs::directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        int version = -1;
        const entry_class c = classify(entry.path(), version);
        if (c == entry_class::foreign)
            continue; // not ours: never counted, never touched
        std::error_code ec;
        const std::uintmax_t size = fs::file_size(entry.path(), ec);
        stats.bytes += ec ? 0 : size;
        switch (c) {
        case entry_class::entry:
            ++stats.entries;
            ++stats.version_histogram[version];
            break;
        case entry_class::stale:
            ++stats.stale;
            ++stats.version_histogram[version];
            on_removable(entry.path(), ec ? 0 : size);
            break;
        case entry_class::corrupt:
            ++stats.corrupt;
            on_removable(entry.path(), ec ? 0 : size);
            break;
        case entry_class::stray_tmp:
            ++stats.stray_tmp;
            on_removable(entry.path(), ec ? 0 : size);
            break;
        case entry_class::foreign:
            break;
        }
    }
    return stats;
}

} // namespace

cache_dir_stats scan_cache_dir(const std::string& dir) {
    return walk_cache_dir(dir, [](const fs::path&, std::uintmax_t) {});
}

cache_gc_result gc_cache_dir(const std::string& dir) {
    cache_gc_result out;
    const cache_dir_stats stats =
        walk_cache_dir(dir, [&](const fs::path& path, std::uintmax_t size) {
            std::error_code ec;
            if (fs::remove(path, ec) && !ec) {
                ++out.removed;
                out.bytes_freed += size;
            }
        });
    out.scanned = stats.files();
    out.kept = stats.entries;
    return out;
}

// ---------------------------------------------------------------------------
// scenario_cache
// ---------------------------------------------------------------------------

scenario_cache::scenario_cache(std::string dir) : dir_(std::move(dir)) {
    SDRBIST_EXPECTS(!dir_.empty());
    std::error_code ec;
    fs::create_directories(dir_, ec);
    SDRBIST_EXPECTS(!ec && fs::is_directory(dir_));
}

std::string scenario_cache::key(const scenario& sc,
                                const bist::bist_config& materialised) {
    fnv1a64 h;
    h.update("sdrbist-scenario-cache-v" +
             std::to_string(cache_format_version) + "\n");
    h.update("seed-derivation-v" + std::to_string(seed_derivation_version) +
             "\n");
    // Grid coordinates by *name*, never by index: a subset or extended
    // grid that keeps a scenario's coordinates keeps its key.
    h.update("preset=" + sc.preset_name + "\n");
    h.update("fault=" + bist::to_string(sc.fault) + "\n");
    h.update("trial=" + std::to_string(sc.trial) + "\n");
    h.update("scenario_seed=" + std::to_string(sc.seed) + "\n");
    h.update(bist::canonical_config_text(materialised));
    return h.hex();
}

std::string scenario_cache::path_for(const std::string& key) const {
    return (fs::path(dir_) / (key + ".json")).string();
}

std::optional<scenario_result>
scenario_cache::load(const std::string& key) const {
    const telemetry::scoped_span span(telemetry::category::cache,
                                      "cache.load");
    fault_injection::fire(fault_injection::site::cache_load);
    bool corrupt = false;
    {
        std::ifstream in(path_for(key), std::ios::binary);
        if (!in.good())
            return std::nullopt; // plain miss
        std::ostringstream buffer;
        buffer << in.rdbuf();
        try {
            const json_value doc = parse_json(buffer.str());
            if (static_cast<int>(doc.at("cache_version").as_number()) !=
                cache_format_version)
                return std::nullopt; // stale entry — cache-gc's business
            if (doc.at("key").as_string() == key) {
                scenario_result out;
                out.engine_error = doc.at("engine_error").as_bool();
                out.error = doc.at("error").as_string();
                out.elapsed_s = num_or_nan(doc.at("elapsed_s"));
                out.report = report_from_json(doc.at("report"));
                return out;
            }
            corrupt = true; // parses, but is not the entry its name claims
        } catch (const std::exception&) {
            corrupt = true; // truncated / garbled / fields missing
        }
    }
    // Treat as a miss and re-grade — but move the wreck into quarantine/
    // first, so the re-graded store lands in a clean slot and the evidence
    // survives for inspection.
    if (corrupt && quarantine_file(path_for(key)))
        quarantined_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
}

void scenario_cache::store(const std::string& key,
                           const scenario_result& r) const {
    const telemetry::scoped_span span(telemetry::category::cache,
                                      "cache.store");
    json_object_writer doc;
    doc.size_field("cache_version",
                   static_cast<std::size_t>(cache_format_version));
    doc.string_field("key", key);
    // Human-debuggable provenance (load() ignores these: the running grid
    // owns its scenario coordinates).
    doc.string_field("preset", r.sc.preset_name);
    doc.string_field("fault", bist::to_string(r.sc.fault));
    doc.size_field("trial", r.sc.trial);
    doc.string_field("seed", std::to_string(r.sc.seed));
    doc.bool_field("engine_error", r.engine_error);
    doc.string_field("error", r.error);
    doc.number_field("elapsed_s", r.elapsed_s);
    doc.field("report", report_json(r.report));

    // Atomic publish: write a uniquely named temp file in the cache
    // directory, then rename over the final path.  Concurrent writers of
    // the same key (shard processes sharing the directory) both produce
    // identical content; last rename wins.  Best-effort by design.
    // Uniqueness: pid distinguishes processes, the counter distinguishes
    // threads/stores within one.
#if defined(__unix__) || defined(__APPLE__)
    const std::uint64_t process_tag = static_cast<std::uint64_t>(::getpid());
#else
    const std::uint64_t process_tag =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
#endif
    static std::atomic<std::uint64_t> sequence{0};
    const std::string tmp =
        path_for(key) + ".tmp." + fnv1a64::hex_digest(process_tag) + "." +
        std::to_string(sequence.fetch_add(1, std::memory_order_relaxed));
    try {
        // Injected store faults degrade to "entry not cached" — exactly
        // the contract a real I/O failure gets.
        fault_injection::fire(fault_injection::site::cache_store);
        std::string body = doc.str();
        body += '\n';
        fault_injection::corrupt(fault_injection::site::cache_store, body);
        {
            std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
            out << body;
            out.flush();
            if (!out.good()) {
                std::error_code ec;
                fs::remove(tmp, ec);
                return;
            }
        }
        std::error_code ec;
        fs::rename(tmp, path_for(key), ec);
        if (ec)
            fs::remove(tmp, ec);
    } catch (const std::exception&) {
        std::error_code ec;
        fs::remove(tmp, ec);
    }
}

bool quarantine_file(const std::string& file) {
    std::error_code ec;
    const fs::path src(file);
    const fs::path dir = src.parent_path() / "quarantine";
    fs::create_directories(dir, ec);
    if (ec)
        return false;
    fs::path dst = dir / src.filename();
    for (int n = 1; fs::exists(dst, ec) && n < 1000; ++n)
        dst = dir / (src.filename().string() + "." + std::to_string(n));
    fs::rename(src, dst, ec);
    return !ec;
}

} // namespace sdrbist::campaign

/// \file shard_io.hpp
/// \brief Full-fidelity campaign result files for cross-process merging.
///
/// The export JSON (campaign/export.{hpp,cpp}) is a *summary* format: its
/// scenario rows carry selected metrics, not the whole report, so it
/// cannot be merged back into a campaign_result.  This module defines the
/// complementary *shard file*: a versioned JSON document that round-trips
/// every field the aggregation and exporters read — scenario coordinates,
/// verdict reports bit-for-bit (through the cache's report serialisation:
/// shortest round-trip doubles), error strings, timing and counters.
///
///   campaign_runner --shard 0/3 --shard-out shard0.json …
///   campaign_runner --merge shard0.json shard1.json shard2.json --json …
///
/// `read_result_file` + `merge_results()` therefore recombine shard
/// processes without the shared `--cache-dir` the old merge flow needed,
/// and the merged exports are byte-identical (timing suppressed) to an
/// unsharded run's.
#pragma once

#include <string>

#include "campaign/campaign.hpp"
#include "campaign/export.hpp"

namespace sdrbist::campaign {

/// Shard-file layout version; read_result rejects other versions loudly.
/// v2: added the per-category `telemetry` aggregate block.
/// v3: failure-containment fields — per-row attempts/backoff_ms/gave_up/
///     timed_out, per-result resumed/quarantined.
/// v4: stage-artefact store counters — per-result store_hits/store_misses/
///     store_bytes.
inline constexpr int shard_file_version = 4;

/// Serialise a campaign result (typically one shard's) with full fidelity.
/// Deterministic: fixed field order, shortest round-trip doubles — so
/// write(read(x)) is byte-identical to write(x).
std::string result_to_json(const campaign_result& result);

/// Rebuild a campaign result from its shard-file form.  The coverage
/// matrix and population statistics are re-derived by `merge_results`
/// (shard files deliberately store only ground truth: the rows).  Throws
/// contract_violation on version or structure mismatches.
campaign_result result_from_json(const json_value& doc);

/// One scenario row with full fidelity — the unit the shard file, the
/// crash-recovery journal (campaign/journal.hpp) and any future
/// distributed transport share.  Deterministic field order; 64-bit values
/// travel as decimal strings.
std::string scenario_row_json(const scenario_result& r);
scenario_result scenario_row_from_json(const json_value& v);

/// File convenience wrappers.  `read_result_file` throws
/// contract_violation when the file is missing or malformed;
/// `write_result_file` returns false when the file cannot be written.
/// Writes publish atomically (unique temp file + rename), so a reader —
/// or a post-crash `--merge` — only ever sees the target absent or
/// complete, never torn, and a failed write leaves any previous file
/// untouched.
campaign_result read_result_file(const std::string& path);
[[nodiscard]] bool write_result_file(const std::string& path,
                                     const campaign_result& result);

/// Lenient multi-file read for salvaging partially-failed distributed
/// runs (`campaign_runner --merge --salvage`): a file that is missing,
/// truncated, garbled or version-skewed is moved to a `quarantine/`
/// directory beside it (see campaign/cache.hpp) and skipped, counted in
/// `stats.quarantined_files` with a note — instead of failing the whole
/// merge.  Pair with `merge_results_salvage` for row-level leniency.
std::vector<campaign_result>
read_result_files_salvage(const std::vector<std::string>& paths,
                          salvage_stats& stats);

} // namespace sdrbist::campaign

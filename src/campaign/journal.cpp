#include "campaign/journal.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h> // fsync/ftruncate: per-line durability + rollback
#endif

#include "bist/config_canonical.hpp"
#include "campaign/export.hpp"
#include "campaign/shard_io.hpp"
#include "core/contracts.hpp"
#include "core/fault_injection.hpp"
#include "core/hash.hpp"

namespace sdrbist::campaign {

std::string campaign_identity(const campaign_config& cfg) {
    fnv1a64 h;
    h.update("sdrbist-campaign-journal-v" +
             std::to_string(journal_format_version) + "\n");
    h.update("seed=" + std::to_string(cfg.seed) + "\n");
    h.update("trials=" + std::to_string(cfg.trials) + "\n");
    h.update("reseed=" + std::to_string(static_cast<int>(cfg.reseed)) + "\n");
    h.update("jitter_rel_sigma=" + json_number(cfg.perturb.jitter_rel_sigma) +
             "\n");
    h.update("dcde_static_sigma_s=" +
             json_number(cfg.perturb.dcde_static_sigma_s) + "\n");
    h.update("relax_mask_to_floor=" +
             std::string(cfg.relax_mask_to_floor ? "1" : "0") + "\n");
    h.update("shard=" + std::to_string(cfg.shard.index) + "/" +
             std::to_string(cfg.shard.count) + "\n");
    for (const auto& p : cfg.presets)
        h.update("preset=" + p.name + "\n");
    for (const auto f : cfg.faults)
        h.update(std::string("fault=") + bist::to_string(f) + "\n");
    h.update(bist::canonical_config_text(cfg.base));
    return h.hex();
}

journal_replay read_journal(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in.good())
        throw contract_violation("cannot read journal: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    journal_replay out;
    bool saw_header = false;
    std::size_t offset = 0;
    while (offset < text.size()) {
        const std::size_t nl = text.find('\n', offset);
        if (nl == std::string::npos) {
            ++out.torn_lines; // unterminated tail — the classic torn write
            break;
        }
        const std::string line = text.substr(offset, nl - offset);
        try {
            const json_value doc = parse_json(line);
            const std::string row = doc.at("row").as_string();
            if (!saw_header) {
                if (row != "header" ||
                    static_cast<int>(
                        doc.at("journal_version").as_number()) !=
                        journal_format_version)
                    throw contract_violation("header/version mismatch");
                out.identity = doc.at("identity").as_string();
                saw_header = true;
            } else if (row == "scenario") {
                journal_row jr;
                jr.key = doc.at("key").as_string();
                jr.result = scenario_row_from_json(doc.at("result"));
                out.rows.push_back(std::move(jr));
            }
            // Unknown row kinds pass through silently (forward compat).
        } catch (const std::exception& e) {
            if (!saw_header)
                throw contract_violation("malformed journal header in " +
                                         path + ": " + e.what());
            // Everything from the first bad line on is untrusted; count
            // it and let the writer truncate back to the clean prefix.
            for (std::size_t i = offset; i < text.size(); ++i)
                if (text[i] == '\n')
                    ++out.torn_lines;
            if (text.back() != '\n')
                ++out.torn_lines;
            break;
        }
        offset = nl + 1;
        out.valid_bytes = offset;
    }
    if (!saw_header)
        throw contract_violation("journal has no header: " + path);
    return out;
}

campaign_journal::campaign_journal(const std::string& path,
                                   const std::string& identity,
                                   bool resume) {
    std::uint64_t keep = 0;
    bool need_header = true;
    std::error_code exists_ec;
    if (resume && std::filesystem::exists(path, exists_ec)) {
        const journal_replay replay = read_journal(path);
        SDRBIST_EXPECTS(replay.identity == identity);
        keep = replay.valid_bytes;
        need_header = false;
    }
    // A resume against a journal that does not exist yet is a cold start,
    // not an error: fall through and create a fresh header.  The service
    // worker loop relies on this — it always passes --resume so a
    // restarted worker picks up where its journal left off, first run
    // included.
    {
        // Create if absent, then trim to the clean prefix (drops any torn
        // tail from a crash) before opening for append.
        std::error_code ec;
        if (!std::filesystem::exists(path, ec))
            std::ofstream(path, std::ios::binary).flush();
        std::filesystem::resize_file(path, keep, ec);
        SDRBIST_EXPECTS(!ec);
    }
    file_ = std::fopen(path.c_str(), "ab");
    SDRBIST_EXPECTS(file_ != nullptr);
    if (need_header) {
        json_object_writer o;
        o.string_field("row", "header");
        o.size_field("journal_version",
                     static_cast<std::size_t>(journal_format_version));
        o.string_field("identity", identity);
        std::string line = o.str();
        line += '\n';
        SDRBIST_EXPECTS(write_line(line));
    }
}

campaign_journal::~campaign_journal() {
    if (file_ != nullptr)
        std::fclose(file_);
}

bool campaign_journal::write_line(const std::string& line) {
    // "ab" streams write at end regardless of position, but ftell only
    // reflects it after a seek — and the rollback needs the true offset.
    std::fseek(file_, 0, SEEK_END);
    const long start = std::ftell(file_);
    const std::size_t n = std::fwrite(line.data(), 1, line.size(), file_);
    if (n != line.size() || std::fflush(file_) != 0) {
        // Roll the partial write back so the journal stays parseable.
#if defined(__unix__) || defined(__APPLE__)
        if (start >= 0)
            ftruncate(fileno(file_), static_cast<off_t>(start));
#else
        static_cast<void>(start);
#endif
        return false;
    }
#if defined(__unix__) || defined(__APPLE__)
    fsync(fileno(file_));
#endif
    return true;
}

bool campaign_journal::append(const std::string& key,
                              const scenario_result& r) {
    std::string line;
    try {
        fault_injection::fire(fault_injection::site::journal_append);
        json_object_writer o;
        o.string_field("row", "scenario");
        o.string_field("key", key);
        o.field("result", scenario_row_json(r));
        line = o.str();
        line += '\n';
        fault_injection::corrupt(fault_injection::site::journal_append,
                                 line);
    } catch (const std::exception&) {
        // Best-effort: an injected (or real) serialisation failure drops
        // the line — recovery recomputes this scenario.
        const std::lock_guard<std::mutex> lock(mutex_);
        ++dropped_;
        return false;
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    if (write_line(line)) {
        ++rows_;
        return true;
    }
    ++dropped_;
    return false;
}

std::size_t campaign_journal::rows() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return rows_;
}

std::size_t campaign_journal::dropped() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

} // namespace sdrbist::campaign

#include "campaign/export.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "core/contracts.hpp"

namespace sdrbist::campaign {

// ---------------------------------------------------------------------------
// Writer helpers
// ---------------------------------------------------------------------------

namespace {


std::string format_size(std::size_t v) { return std::to_string(v); }


std::string csv_cell(const std::string& s) {
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (const char c : s) {
        if (c == '"')
            out.push_back('"');
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

} // namespace

std::string scenario_json(const scenario_result& r, const export_options& opt) {
    json_object_writer o;
    o.size_field("index", r.sc.index);
    o.string_field("preset", r.sc.preset_name);
    o.string_field("fault", bist::to_string(r.sc.fault));
    o.size_field("trial", r.sc.trial);
    // Seeds are full 64-bit values; JSON numbers only carry 53 bits, so
    // export as a decimal string.
    o.string_field("seed", std::to_string(r.sc.seed));
    o.bool_field("pass", !r.flagged());
    o.bool_field("engine_error", r.engine_error);
    if (r.engine_error)
        o.string_field("error", r.error);
    o.number_field("carrier_hz", r.report.carrier_hz);
    o.number_field("skew_estimate_s", r.report.skew.d_hat);
    o.bool_field("skew_converged", r.report.skew.converged);
    o.bool_field("dual_rate_conditions_ok", r.report.dual_rate_conditions_ok);
    o.bool_field("mask_pass", r.report.mask.pass);
    o.number_field("mask_worst_margin_db", r.report.mask.worst_margin_db);
    o.bool_field("evm_pass", r.report.evm_pass);
    o.number_field("evm_percent", r.report.evm.evm_percent());
    o.bool_field("acpr_pass", r.report.acpr_pass);
    o.number_field("acpr_worst_dbc", r.report.acpr.worst_dbc());
    o.bool_field("power_pass", r.report.power_pass);
    o.number_field("measured_output_rms", r.report.measured_output_rms);
    o.number_field("occupied_bw_hz", r.report.occupied_bw_hz);
    if (opt.include_timing) {
        o.number_field("elapsed_s", r.elapsed_s);
        // Retry bookkeeping is measured data too: a warm (cache-hit) or
        // resumed rerun takes one attempt where the cold run retried.
        o.size_field("attempts", r.attempts);
        o.number_field("backoff_ms", r.backoff_ms);
        o.bool_field("gave_up", r.gave_up);
        o.bool_field("timed_out", r.timed_out);
    }
    return o.str();
}

std::string json_number(double v) {
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

std::string json_quote(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

namespace {

/// Per-category telemetry aggregates as a JSON object keyed by category
/// name.  Measured data (appears only under include_timing); ns values as
/// JSON numbers — this is the human/analysis export, the full-fidelity
/// round trip lives in shard_io.
std::string telemetry_json(const telemetry::summary& s) {
    json_object_writer o;
    for (std::size_t i = 0; i < telemetry::category_count; ++i) {
        const auto& c = s.categories[i];
        json_object_writer cat;
        cat.size_field("count", c.count);
        cat.number_field("total_ns", static_cast<double>(c.total_ns));
        cat.number_field("mean_ns", c.mean_ns());
        cat.number_field("max_ns", static_cast<double>(c.max_ns));
        o.field(telemetry::to_string(static_cast<telemetry::category>(i)),
                cat.str());
    }
    return o.str();
}

} // namespace

std::string summary_json(const campaign_result& result,
                         const export_options& opt) {
    json_object_writer o;
    o.string_field("row", "summary");
    o.size_field("scenarios", result.scenario_count());
    o.size_field("golden_runs", result.golden_runs);
    o.size_field("golden_passes", result.golden_passes);
    o.number_field("yield", result.yield());
    o.size_field("fault_runs", result.fault_runs);
    o.size_field("fault_detected", result.fault_detected);
    o.number_field("coverage", result.coverage());
    o.number_field("escape_rate", result.escape_rate());
    if (opt.include_timing) {
        o.size_field("cache_hits", result.cache_hits);
        o.size_field("cache_misses", result.cache_misses);
        o.size_field("stage_reuse_hits", result.stage_reuse_hits);
        o.size_field("stage_reuse_computes", result.stage_reuse_computes);
        o.size_field("store_hits", result.store_hits);
        o.size_field("store_misses", result.store_misses);
        o.size_field("store_bytes",
                     static_cast<std::size_t>(result.store_bytes));
        o.size_field("scenario_retries", result.scenario_retries);
        o.size_field("scenario_gave_up", result.scenario_gave_up);
        o.size_field("resumed", result.resumed);
        o.size_field("quarantined", result.quarantined);
        o.number_field("wall_seconds", result.wall_s);
    }
    return o.str();
}

std::string to_json(const campaign_result& result, export_options opt) {
    std::string grid_axes;
    {
        json_object_writer o;
        std::string presets = "[";
        for (std::size_t i = 0; i < result.preset_names.size(); ++i) {
            if (i)
                presets += ',';
            presets += json_quote(result.preset_names[i]);
        }
        presets += ']';
        std::string faults = "[";
        for (std::size_t i = 0; i < result.fault_names.size(); ++i) {
            if (i)
                faults += ',';
            faults += json_quote(result.fault_names[i]);
        }
        faults += ']';
        o.field("presets", presets);
        o.field("faults", faults);
        o.size_field("trials", result.trials);
        o.string_field("seed", std::to_string(result.seed));
        if (opt.include_timing)
            o.size_field("threads", result.threads_used);
        grid_axes = o.str();
    }

    std::string summary;
    {
        json_object_writer o;
        o.size_field("scenarios", result.scenario_count());
        o.size_field("golden_runs", result.golden_runs);
        o.size_field("golden_passes", result.golden_passes);
        o.number_field("yield", result.yield());
        o.size_field("fault_runs", result.fault_runs);
        o.size_field("fault_detected", result.fault_detected);
        o.number_field("coverage", result.coverage());
        o.number_field("escape_rate", result.escape_rate());
        if (opt.include_timing) {
            o.number_field("wall_seconds", result.wall_s);
            o.number_field("scenario_cpu_seconds", result.scenario_cpu_s);
            o.number_field("scenarios_per_second",
                           result.scenarios_per_second());
            // Cache counters are measured data too: a warm rerun flips
            // misses into hits, so they would break byte-identity.
            o.size_field("cache_hits", result.cache_hits);
            o.size_field("cache_misses", result.cache_misses);
            // Stage-reuse totals are deterministic per shard partition
            // but not partition-invariant (a shard pools less than the
            // whole grid), so they live with the measured fields.
            o.size_field("stage_reuse_hits", result.stage_reuse_hits);
            o.size_field("stage_reuse_computes",
                         result.stage_reuse_computes);
            // Stage-store counters are measured data for the same reason:
            // a warm rerun flips store misses into hits.
            o.size_field("store_hits", result.store_hits);
            o.size_field("store_misses", result.store_misses);
            o.size_field("store_bytes",
                         static_cast<std::size_t>(result.store_bytes));
            // Failure-containment counters: retries depend on injected or
            // real transient faults, resume/quarantine on on-disk history
            // — none are properties of the grid itself.
            o.size_field("scenario_retries", result.scenario_retries);
            o.size_field("scenario_gave_up", result.scenario_gave_up);
            o.size_field("resumed", result.resumed);
            o.size_field("quarantined", result.quarantined);
            if (!result.telemetry_summary.empty())
                o.field("telemetry",
                        telemetry_json(result.telemetry_summary));
        }
        summary = o.str();
    }

    std::string matrix = "[";
    for (std::size_t p = 0; p < result.matrix.size(); ++p)
        for (std::size_t f = 0; f < result.matrix[p].size(); ++f) {
            if (matrix.size() > 1)
                matrix += ',';
            const auto& cell = result.matrix[p][f];
            json_object_writer o;
            o.string_field("preset", result.preset_names[p]);
            o.string_field("fault", result.fault_names[f]);
            o.size_field("runs", cell.runs);
            o.size_field("flagged", cell.flagged);
            o.number_field("fail_rate", cell.fail_rate());
            matrix += o.str();
        }
    matrix += ']';

    json_object_writer doc;
    doc.field("campaign", grid_axes);
    doc.field("summary", summary);
    doc.field("coverage_matrix", matrix);
    if (opt.include_scenarios) {
        std::string rows = "[";
        for (std::size_t i = 0; i < result.results.size(); ++i) {
            if (i)
                rows += ',';
            rows += scenario_json(result.results[i], opt);
        }
        rows += ']';
        doc.field("scenarios", rows);
    }
    return doc.str();
}

std::string coverage_csv(const campaign_result& result) {
    std::string out = "preset,fault,runs,flagged,fail_rate\n";
    for (std::size_t p = 0; p < result.matrix.size(); ++p)
        for (std::size_t f = 0; f < result.matrix[p].size(); ++f) {
            const auto& cell = result.matrix[p][f];
            out += csv_cell(result.preset_names[p]);
            out += ',';
            out += csv_cell(result.fault_names[f]);
            out += ',';
            out += format_size(cell.runs);
            out += ',';
            out += format_size(cell.flagged);
            out += ',';
            out += json_number(cell.fail_rate());
            out += '\n';
        }
    return out;
}

std::string scenarios_csv(const campaign_result& result, export_options opt) {
    std::string out = "index,preset,fault,trial,seed,pass,evm_percent,"
                      "mask_worst_margin_db,acpr_worst_dbc,skew_estimate_s,"
                      "error";
    if (opt.include_timing)
        out += ",elapsed_s,attempts";
    out += '\n';
    for (const auto& r : result.results) {
        out += format_size(r.sc.index);
        out += ',';
        out += csv_cell(r.sc.preset_name);
        out += ',';
        out += csv_cell(bist::to_string(r.sc.fault));
        out += ',';
        out += format_size(r.sc.trial);
        out += ',';
        out += std::to_string(r.sc.seed);
        out += ',';
        out += r.flagged() ? "0" : "1";
        out += ',';
        out += json_number(r.report.evm.evm_percent());
        out += ',';
        out += json_number(r.report.mask.worst_margin_db);
        out += ',';
        out += json_number(r.report.acpr.worst_dbc());
        out += ',';
        out += json_number(r.report.skew.d_hat);
        out += ',';
        out += csv_cell(r.error);
        if (opt.include_timing) {
            out += ',';
            out += json_number(r.elapsed_s);
            out += ',';
            out += format_size(r.attempts);
        }
        out += '\n';
    }
    return out;
}

std::string scenarios_jsonl(const campaign_result& result,
                            export_options opt) {
    std::string out;
    for (const auto& r : result.results) {
        out += scenario_json(r, opt);
        out += '\n';
    }
    if (opt.jsonl_summary) {
        out += summary_json(result, opt);
        out += '\n';
    }
    return out;
}

// ---------------------------------------------------------------------------
// Streaming JSONL sink
// ---------------------------------------------------------------------------

jsonl_stream::jsonl_stream(std::string path, export_options opt)
    : path_(std::move(path)), opt_(opt),
      out_(path_, std::ios::binary | std::ios::trunc) {
    SDRBIST_EXPECTS(out_.good());
}

jsonl_stream::~jsonl_stream() {
    try {
        finalise();
    } catch (...) {
        // Destructor best-effort: the completion-order file is still valid
        // JSONL, just not grid-ordered.
    }
}

void jsonl_stream::append(const scenario_result& r) {
    const std::string line = scenario_json(r, opt_) + "\n";
    const std::lock_guard<std::mutex> lock(mutex_);
    SDRBIST_EXPECTS(!finalised_);
    out_ << line;
    out_.flush(); // each row must be observable before the run finishes
    rows_.push_back({r.sc.index, bytes_written_, line.size()});
    bytes_written_ += line.size();
}

void jsonl_stream::finalise() {
    const std::lock_guard<std::mutex> lock(mutex_);
    finalise_locked(nullptr);
}

void jsonl_stream::finalise(const campaign_result& result) {
    const std::string summary_row = summary_json(result, opt_) + "\n";
    const std::lock_guard<std::mutex> lock(mutex_);
    finalise_locked(&summary_row);
}

void jsonl_stream::finalise_locked(const std::string* summary_row) {
    if (finalised_)
        return;
    out_.close();

    // Re-read the completion-order bytes and publish the grid-ordered
    // artefact atomically: write a sibling temp file, then rename over the
    // original.  Any failure leaves the completion-order file untouched —
    // still valid JSONL, still salvageable.
    std::string streamed;
    {
        std::ifstream in(path_, std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        streamed = buffer.str();
    }
    SDRBIST_ENSURES(streamed.size() == bytes_written_);

    std::sort(rows_.begin(), rows_.end(),
              [](const row_ref& a, const row_ref& b) {
                  return a.grid_index < b.grid_index;
              });
    const std::string tmp = path_ + ".ordered.tmp";
    {
        std::ofstream ordered(tmp, std::ios::binary | std::ios::trunc);
        for (const auto& row : rows_)
            ordered.write(streamed.data() +
                              static_cast<std::streamoff>(row.offset),
                          static_cast<std::streamsize>(row.length));
        if (summary_row)
            ordered.write(summary_row->data(),
                          static_cast<std::streamsize>(summary_row->size()));
        ordered.flush();
        if (!ordered.good()) {
            std::error_code ec;
            std::filesystem::remove(tmp, ec);
            SDRBIST_ENSURES(!"jsonl_stream finalise: ordered rewrite failed");
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path_, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        SDRBIST_ENSURES(!"jsonl_stream finalise: rename failed");
    }
    finalised_ = true;
}

std::size_t jsonl_stream::rows() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return rows_.size();
}

text_table coverage_table(const campaign_result& result) {
    std::vector<std::string> headers;
    headers.reserve(result.fault_names.size() + 1);
    headers.push_back("preset");
    for (const auto& f : result.fault_names)
        headers.push_back(f);
    text_table table(std::move(headers));
    table.set_title("fault-coverage matrix (flagged/runs)");
    for (std::size_t p = 0; p < result.matrix.size(); ++p) {
        std::vector<std::string> row;
        row.reserve(result.matrix[p].size() + 1);
        row.push_back(result.preset_names[p]);
        for (const auto& cell : result.matrix[p])
            row.push_back(format_size(cell.flagged) + "/" +
                          format_size(cell.runs));
        table.add_row(std::move(row));
    }
    return table;
}

// ---------------------------------------------------------------------------
// json_value accessors
// ---------------------------------------------------------------------------

bool json_value::as_bool() const {
    SDRBIST_EXPECTS(is_bool());
    return std::get<bool>(v_);
}

double json_value::as_number() const {
    SDRBIST_EXPECTS(is_number());
    return std::get<double>(v_);
}

const std::string& json_value::as_string() const {
    SDRBIST_EXPECTS(is_string());
    return std::get<std::string>(v_);
}

const json_value::array& json_value::as_array() const {
    SDRBIST_EXPECTS(is_array());
    return std::get<array>(v_);
}

const json_value::object& json_value::as_object() const {
    SDRBIST_EXPECTS(is_object());
    return std::get<object>(v_);
}

const json_value& json_value::at(const std::string& key) const {
    const auto& obj = as_object();
    const auto it = obj.find(key);
    SDRBIST_EXPECTS(it != obj.end());
    return it->second;
}

const json_value& json_value::at(std::size_t i) const {
    const auto& arr = as_array();
    SDRBIST_EXPECTS(i < arr.size());
    return arr[i];
}

std::size_t json_value::size() const {
    if (is_array())
        return std::get<array>(v_).size();
    if (is_object())
        return std::get<object>(v_).size();
    SDRBIST_EXPECTS(!"json_value::size on a scalar");
    return 0;
}

// ---------------------------------------------------------------------------
// Parser (recursive descent over the subset the exporter emits)
// ---------------------------------------------------------------------------

namespace {

class json_parser {
public:
    explicit json_parser(const std::string& text) : text_(text) {}

    json_value parse_document() {
        json_value v = parse_value();
        skip_ws();
        SDRBIST_EXPECTS(pos_ == text_.size());
        return v;
    }

private:
    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek() {
        SDRBIST_EXPECTS(pos_ < text_.size());
        return text_[pos_];
    }

    void expect(char c) {
        SDRBIST_EXPECTS(pos_ < text_.size() && text_[pos_] == c);
        ++pos_;
    }

    bool consume_literal(const char* lit) {
        const std::size_t n = std::char_traits<char>::length(lit);
        if (text_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    json_value parse_value() {
        skip_ws();
        const char c = peek();
        if (c == '{')
            return parse_object();
        if (c == '[')
            return parse_array();
        if (c == '"')
            return json_value(parse_string());
        if (consume_literal("true"))
            return json_value(true);
        if (consume_literal("false"))
            return json_value(false);
        if (consume_literal("null"))
            return json_value(nullptr);
        return parse_number();
    }

    json_value parse_object() {
        expect('{');
        json_value::object obj;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return json_value(std::move(obj));
        }
        for (;;) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            obj.emplace(std::move(key), parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return json_value(std::move(obj));
        }
    }

    json_value parse_array() {
        expect('[');
        json_value::array arr;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return json_value(std::move(arr));
        }
        for (;;) {
            arr.push_back(parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return json_value(std::move(arr));
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        for (;;) {
            SDRBIST_EXPECTS(pos_ < text_.size());
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            SDRBIST_EXPECTS(pos_ < text_.size());
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                SDRBIST_EXPECTS(pos_ + 4 <= text_.size());
                unsigned code = 0;
                const auto res = std::from_chars(
                    text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
                SDRBIST_EXPECTS(res.ptr == text_.data() + pos_ + 4);
                pos_ += 4;
                // UTF-8 encode (no surrogate-pair support; the exporter
                // only emits \u00XX control escapes).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(
                        static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
            }
            default:
                SDRBIST_EXPECTS(!"invalid escape sequence");
            }
        }
    }

    json_value parse_number() {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '-' ||
                text_[pos_] == '+'))
            ++pos_;
        double value = 0.0;
        const auto res = std::from_chars(text_.data() + start,
                                         text_.data() + pos_, value);
        SDRBIST_EXPECTS(res.ec == std::errc() &&
                        res.ptr == text_.data() + pos_);
        return json_value(value);
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

} // namespace

json_value parse_json(const std::string& text) {
    return json_parser(text).parse_document();
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> row;
    std::string cell;
    bool in_quotes = false;
    bool cell_started = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    cell.push_back('"');
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                cell.push_back(c);
            }
            continue;
        }
        switch (c) {
        case '"':
            in_quotes = true;
            cell_started = true;
            break;
        case ',':
            row.push_back(std::move(cell));
            cell.clear();
            cell_started = true;
            break;
        case '\r':
            break;
        case '\n':
            if (cell_started || !cell.empty() || !row.empty()) {
                row.push_back(std::move(cell));
                cell.clear();
                rows.push_back(std::move(row));
                row.clear();
                cell_started = false;
            }
            break;
        default:
            cell.push_back(c);
            cell_started = true;
        }
    }
    SDRBIST_EXPECTS(!in_quotes);
    if (cell_started || !cell.empty() || !row.empty()) {
        row.push_back(std::move(cell));
        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace sdrbist::campaign

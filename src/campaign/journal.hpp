/// \file journal.hpp
/// \brief Crash-safe campaign journal: append-only JSONL of completed
///        scenarios, the substrate of `campaign_runner --resume`.
///
/// A campaign that dies mid-run (OOM kill, pre-emption, power) should
/// cost only the scenarios in flight, not the whole grid.  The runner
/// appends one fsync'd line per *completed* scenario — full-fidelity row
/// (the shard-file serialisation) plus the scenario's content digest (the
/// scenario-cache key).  On `--resume` the journal is replayed: rows
/// whose digest still matches what the current config derives are
/// restored in place, everything else is recomputed, and the resumed
/// run's exports are byte-identical (timing suppressed) to an
/// uninterrupted run's.
///
/// Durability/consistency contracts:
///  * **One line, one write, one fsync.**  Each row is appended with a
///    single write call and fsync'd, so a crash leaves at most one torn
///    *trailing* line.  `read_journal` tolerates exactly that: it stops
///    at the first unparseable line and reports the clean prefix; the
///    writer truncates the tail before resuming appends.
///  * **Best-effort, never load-bearing.**  An append failure is counted
///    and dropped — recovery just recomputes that scenario.  The journal
///    can make a rerun cheaper, never a run wronger.
///  * **Identity-guarded.**  The header carries a digest of the campaign
///    shape (seed, grid axes, shard, canonical base config).  Resuming
///    against a different campaign is a contract violation; per-row
///    digests then re-validate each restored scenario individually.
///  * **Only deterministic outcomes are journalled** (success or contract
///    rejection).  Gave-up / timed-out rows are environment-dependent and
///    must be re-attempted by the resuming run, so the runner never
///    writes them.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"

namespace sdrbist::campaign {

/// Journal line-format version; read_journal rejects other versions.
inline constexpr int journal_format_version = 1;

/// Digest of the campaign *shape*: everything that decides which
/// scenarios exist and what each one computes — seed, trials, reseed
/// policy, perturbations, mask relaxation, shard, preset/fault axes and
/// the canonical base config.  Execution knobs (threads, cache_dir,
/// stage_sharing, retry/deadline settings) are deliberately excluded:
/// they cannot change any deterministic result, so a resume may use
/// different ones.
std::string campaign_identity(const campaign_config& cfg);

/// One replayed journal row.
struct journal_row {
    std::string key; ///< scenario-cache digest ("" = config rejected)
    scenario_result result;
};

/// Outcome of reading a journal file.
struct journal_replay {
    std::string identity;        ///< header identity digest
    std::vector<journal_row> rows;
    std::size_t torn_lines = 0;  ///< trailing lines dropped as torn
    std::uint64_t valid_bytes = 0; ///< size of the clean prefix
};

/// Parse a journal.  Tolerates a torn/garbled tail (counted, prefix
/// kept); throws contract_violation when the file cannot be read or the
/// header line itself is missing, malformed or version-skewed.
journal_replay read_journal(const std::string& path);

/// Append-side handle.  Construction either starts a fresh journal
/// (truncate + header) or — with `resume` — validates the existing one
/// against `identity`, truncates any torn tail and continues appending.
class campaign_journal {
public:
    campaign_journal(const std::string& path, const std::string& identity,
                     bool resume);
    ~campaign_journal();
    campaign_journal(const campaign_journal&) = delete;
    campaign_journal& operator=(const campaign_journal&) = delete;

    /// Durably append one completed scenario (thread-safe).  Returns
    /// false (and counts a drop) when the line could not be written whole
    /// — a partial write is rolled back so the journal stays parseable.
    bool append(const std::string& key, const scenario_result& r);

    [[nodiscard]] std::size_t rows() const;    ///< lines appended here
    [[nodiscard]] std::size_t dropped() const; ///< appends that failed

private:
    bool write_line(const std::string& line);

    mutable std::mutex mutex_;
    std::FILE* file_ = nullptr; ///< append stream; fsync'd per line on POSIX
    std::size_t rows_ = 0;
    std::size_t dropped_ = 0;
};

} // namespace sdrbist::campaign

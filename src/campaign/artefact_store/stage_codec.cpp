#include "campaign/artefact_store/stage_codec.hpp"

#include <limits>
#include <memory>
#include <utility>

#include "core/contracts.hpp"

namespace sdrbist::campaign {

namespace {

double num_or_nan(const json_value& v) {
    return v.is_null() ? std::numeric_limits<double>::quiet_NaN()
                       : v.as_number();
}

std::size_t size_of(const json_value& v) {
    return static_cast<std::size_t>(v.as_number());
}

std::string double_vector_json(const std::vector<double>& values) {
    std::string out = "[";
    for (const double x : values) {
        if (out.size() > 1)
            out += ',';
        out += json_number(x);
    }
    out += ']';
    return out;
}

std::vector<double> double_vector_from_json(const json_value& v) {
    const auto& arr = v.as_array();
    std::vector<double> out;
    out.reserve(arr.size());
    for (const auto& e : arr)
        out.push_back(num_or_nan(e));
    return out;
}

std::string complex_vector_json(
    const std::vector<std::complex<double>>& values) {
    std::string out = "[";
    for (const auto& z : values) {
        if (out.size() > 1)
            out += ',';
        out += json_number(z.real());
        out += ',';
        out += json_number(z.imag());
    }
    out += ']';
    return out;
}

std::vector<std::complex<double>>
complex_vector_from_json(const json_value& v) {
    const auto& arr = v.as_array();
    SDRBIST_EXPECTS(arr.size() % 2 == 0);
    std::vector<std::complex<double>> out;
    out.reserve(arr.size() / 2);
    for (std::size_t i = 0; i < arr.size(); i += 2)
        out.emplace_back(num_or_nan(arr[i]), num_or_nan(arr[i + 1]));
    return out;
}

// ---- waveform ---------------------------------------------------------------

std::string waveform_json(const waveform::baseband_waveform& w) {
    json_object_writer o;
    o.field("samples", complex_vector_json(w.samples));
    o.number_field("sample_rate", w.sample_rate);
    o.number_field("symbol_rate", w.symbol_rate);
    o.number_field("rolloff", w.rolloff);
    o.size_field("oversample", w.oversample);
    o.size_field("shaper_delay_samples", w.shaper_delay_samples);
    o.field("symbols", complex_vector_json(w.symbols));
    o.size_field("mod", static_cast<std::size_t>(w.mod));
    return o.str();
}

waveform::baseband_waveform waveform_from_json(const json_value& v) {
    waveform::baseband_waveform w;
    w.samples = complex_vector_from_json(v.at("samples"));
    w.sample_rate = num_or_nan(v.at("sample_rate"));
    w.symbol_rate = num_or_nan(v.at("symbol_rate"));
    w.rolloff = num_or_nan(v.at("rolloff"));
    w.oversample = size_of(v.at("oversample"));
    w.shaper_delay_samples = size_of(v.at("shaper_delay_samples"));
    w.symbols = complex_vector_from_json(v.at("symbols"));
    w.mod = static_cast<waveform::modulation>(size_of(v.at("mod")));
    return w;
}

std::string generator_config_json(const waveform::generator_config& g) {
    json_object_writer o;
    o.size_field("mod", static_cast<std::size_t>(g.mod));
    o.number_field("symbol_rate", g.symbol_rate);
    o.number_field("rolloff", g.rolloff);
    o.size_field("oversample", g.oversample);
    o.size_field("span_symbols", g.span_symbols);
    o.size_field("symbol_count", g.symbol_count);
    o.size_field("data", static_cast<std::size_t>(g.data));
    o.size_field("prbs_seed", static_cast<std::size_t>(g.prbs_seed));
    return o.str();
}

waveform::generator_config generator_config_from_json(const json_value& v) {
    waveform::generator_config g;
    g.mod = static_cast<waveform::modulation>(size_of(v.at("mod")));
    g.symbol_rate = num_or_nan(v.at("symbol_rate"));
    g.rolloff = num_or_nan(v.at("rolloff"));
    g.oversample = size_of(v.at("oversample"));
    g.span_symbols = size_of(v.at("span_symbols"));
    g.symbol_count = size_of(v.at("symbol_count"));
    g.data = static_cast<waveform::prbs_order>(size_of(v.at("data")));
    g.prbs_seed = static_cast<std::uint32_t>(size_of(v.at("prbs_seed")));
    return g;
}

// ---- band plan --------------------------------------------------------------

std::string band_spec_json(const sampling::band_spec& b) {
    json_object_writer o;
    o.number_field("f_lo", b.f_lo);
    o.number_field("f_hi", b.f_hi);
    return o.str();
}

sampling::band_spec band_spec_from_json(const json_value& v) {
    sampling::band_spec b;
    b.f_lo = num_or_nan(v.at("f_lo"));
    b.f_hi = num_or_nan(v.at("f_hi"));
    return b;
}

std::string band_plan_json(const calib::band_plan& p) {
    json_object_writer o;
    o.field("fast", band_spec_json(p.fast));
    o.field("slow", band_spec_json(p.slow));
    o.number_field("fast_offset_hz", p.fast_offset_hz);
    o.number_field("slow_offset_hz", p.slow_offset_hz);
    return o.str();
}

calib::band_plan band_plan_from_json(const json_value& v) {
    calib::band_plan p;
    p.fast = band_spec_from_json(v.at("fast"));
    p.slow = band_spec_from_json(v.at("slow"));
    p.fast_offset_hz = num_or_nan(v.at("fast_offset_hz"));
    p.slow_offset_hz = num_or_nan(v.at("slow_offset_hz"));
    return p;
}

// ---- passbands and captures -------------------------------------------------

std::string passband_json(const rf::envelope_passband& p) {
    json_object_writer o;
    o.field("envelope", complex_vector_json(p.envelope_samples()));
    o.number_field("envelope_rate", p.envelope_rate());
    o.number_field("carrier_hz", p.carrier());
    o.size_field("half_taps", p.interp_half_taps());
    return o.str();
}

std::shared_ptr<const rf::envelope_passband>
passband_from_json(const json_value& v) {
    return std::make_shared<const rf::envelope_passband>(
        complex_vector_from_json(v.at("envelope")),
        num_or_nan(v.at("envelope_rate")), num_or_nan(v.at("carrier_hz")),
        size_of(v.at("half_taps")));
}

std::string tx_output_json(const rf::tx_output& t) {
    // The passband evaluator is the same (envelope, rate, carrier) triple
    // realised as an interpolator, so it is rebuilt rather than stored
    // twice.  `transmit()` always uses the default half-taps; assert that
    // so a future change cannot silently decode to a different evaluator.
    SDRBIST_EXPECTS(t.passband != nullptr);
    json_object_writer o;
    o.field("envelope", complex_vector_json(t.envelope));
    o.number_field("envelope_rate", t.envelope_rate);
    o.number_field("carrier_hz", t.carrier_hz);
    o.size_field("passband_half_taps", t.passband->interp_half_taps());
    return o.str();
}

rf::tx_output tx_output_from_json(const json_value& v) {
    rf::tx_output t;
    t.envelope = complex_vector_from_json(v.at("envelope"));
    t.envelope_rate = num_or_nan(v.at("envelope_rate"));
    t.carrier_hz = num_or_nan(v.at("carrier_hz"));
    auto env = t.envelope;
    t.passband = std::make_shared<const rf::envelope_passband>(
        std::move(env), t.envelope_rate, t.carrier_hz,
        size_of(v.at("passband_half_taps")));
    return t;
}

std::string ranging_json(const adc::ranging_result& r) {
    json_object_writer o;
    o.number_field("input_scale", r.input_scale);
    o.number_field("observed_peak", r.observed_peak);
    o.bool_field("clipped", r.clipped);
    return o.str();
}

adc::ranging_result ranging_from_json(const json_value& v) {
    adc::ranging_result r;
    r.input_scale = num_or_nan(v.at("input_scale"));
    r.observed_peak = num_or_nan(v.at("observed_peak"));
    r.clipped = v.at("clipped").as_bool();
    return r;
}

std::string capture_json(const adc::nonuniform_capture& c) {
    json_object_writer o;
    o.field("even", double_vector_json(c.even));
    o.field("odd", double_vector_json(c.odd));
    o.number_field("period_s", c.period_s);
    o.number_field("t_start", c.t_start);
    o.number_field("true_delay_s", c.true_delay_s);
    return o.str();
}

adc::nonuniform_capture capture_from_json(const json_value& v) {
    adc::nonuniform_capture c;
    c.even = double_vector_from_json(v.at("even"));
    c.odd = double_vector_from_json(v.at("odd"));
    c.period_s = num_or_nan(v.at("period_s"));
    c.t_start = num_or_nan(v.at("t_start"));
    c.true_delay_s = num_or_nan(v.at("true_delay_s"));
    return c;
}

std::string dual_rate_json(const calib::dual_rate_capture& d) {
    json_object_writer o;
    o.field("fast", capture_json(d.fast));
    o.field("slow", capture_json(d.slow));
    o.field("band_fast", band_spec_json(d.band_fast));
    o.field("band_slow", band_spec_json(d.band_slow));
    return o.str();
}

calib::dual_rate_capture dual_rate_from_json(const json_value& v) {
    calib::dual_rate_capture d;
    d.fast = capture_from_json(v.at("fast"));
    d.slow = capture_from_json(v.at("slow"));
    d.band_fast = band_spec_from_json(v.at("band_fast"));
    d.band_slow = band_spec_from_json(v.at("band_slow"));
    return d;
}

// ---- estimation / grading artefacts ----------------------------------------

std::string skew_json(const calib::skew_estimate& s) {
    json_object_writer o;
    o.number_field("d_hat", s.d_hat);
    o.number_field("final_cost", s.final_cost);
    o.size_field("iterations", s.iterations);
    o.bool_field("converged", s.converged);
    o.size_field("cost_evaluations", s.cost_evaluations);
    std::string trace = "[";
    for (const auto& p : s.trace) {
        if (trace.size() > 1)
            trace += ',';
        json_object_writer t;
        t.size_field("iteration", p.iteration);
        t.number_field("d_hat", p.d_hat);
        t.number_field("cost", p.cost);
        t.number_field("mu", p.mu);
        trace += t.str();
    }
    trace += ']';
    o.field("trace", trace);
    return o.str();
}

calib::skew_estimate skew_from_json(const json_value& v) {
    calib::skew_estimate s;
    s.d_hat = num_or_nan(v.at("d_hat"));
    s.final_cost = num_or_nan(v.at("final_cost"));
    s.iterations = size_of(v.at("iterations"));
    s.converged = v.at("converged").as_bool();
    s.cost_evaluations = size_of(v.at("cost_evaluations"));
    for (const auto& tp : v.at("trace").as_array()) {
        calib::lms_trace_point p;
        p.iteration = size_of(tp.at("iteration"));
        p.d_hat = num_or_nan(tp.at("d_hat"));
        p.cost = num_or_nan(tp.at("cost"));
        p.mu = num_or_nan(tp.at("mu"));
        s.trace.push_back(p);
    }
    return s;
}

std::string mask_json(const waveform::mask_report& m) {
    json_object_writer o;
    o.bool_field("pass", m.pass);
    o.number_field("worst_margin_db", m.worst_margin_db);
    o.number_field("reference_dbhz", m.reference_dbhz);
    std::string segments = "[";
    for (const auto& s : m.segments) {
        if (segments.size() > 1)
            segments += ',';
        json_object_writer seg;
        seg.number_field("offset_lo_hz", s.segment.offset_lo_hz);
        seg.number_field("offset_hi_hz", s.segment.offset_hi_hz);
        seg.number_field("limit_dbc", s.segment.limit_dbc);
        seg.number_field("measured_dbc", s.measured_dbc);
        seg.number_field("margin_db", s.margin_db);
        seg.bool_field("pass", s.pass);
        segments += seg.str();
    }
    segments += ']';
    o.field("segments", segments);
    return o.str();
}

waveform::mask_report mask_from_json(const json_value& v) {
    waveform::mask_report m;
    m.pass = v.at("pass").as_bool();
    m.worst_margin_db = num_or_nan(v.at("worst_margin_db"));
    m.reference_dbhz = num_or_nan(v.at("reference_dbhz"));
    for (const auto& sv : v.at("segments").as_array()) {
        waveform::mask_segment_report s;
        s.segment.offset_lo_hz = num_or_nan(sv.at("offset_lo_hz"));
        s.segment.offset_hi_hz = num_or_nan(sv.at("offset_hi_hz"));
        s.segment.limit_dbc = num_or_nan(sv.at("limit_dbc"));
        s.measured_dbc = num_or_nan(sv.at("measured_dbc"));
        s.margin_db = num_or_nan(sv.at("margin_db"));
        s.pass = sv.at("pass").as_bool();
        m.segments.push_back(std::move(s));
    }
    return m;
}

std::string evm_json(const waveform::evm_result& e) {
    json_object_writer o;
    o.number_field("evm_rms", e.evm_rms);
    o.number_field("evm_peak", e.evm_peak);
    o.number_field("gain_re", e.gain.real());
    o.number_field("gain_im", e.gain.imag());
    o.number_field("timing_offset", e.timing_offset);
    o.field("received_symbols", complex_vector_json(e.received_symbols));
    return o.str();
}

waveform::evm_result evm_from_json(const json_value& v) {
    waveform::evm_result e;
    e.evm_rms = num_or_nan(v.at("evm_rms"));
    e.evm_peak = num_or_nan(v.at("evm_peak"));
    e.gain = {num_or_nan(v.at("gain_re")), num_or_nan(v.at("gain_im"))};
    e.timing_offset = num_or_nan(v.at("timing_offset"));
    e.received_symbols = complex_vector_from_json(v.at("received_symbols"));
    return e;
}

} // namespace

// ---------------------------------------------------------------------------
// Stage outputs
// ---------------------------------------------------------------------------

std::string stimulus_json(const bist::stimulus_output& s) {
    json_object_writer o;
    o.field("stimulus", waveform_json(s.stimulus));
    o.field("calibration", waveform_json(s.calibration));
    o.field("calibration_config",
            generator_config_json(s.calibration_config));
    o.number_field("occupied_bw_calibration_hz",
                   s.occupied_bw_calibration_hz);
    o.number_field("occupied_bw_graded_hz", s.occupied_bw_graded_hz);
    o.field("plan", band_plan_json(s.plan));
    o.number_field("carrier_hz", s.carrier_hz);
    o.number_field("carrier_nudge_hz", s.carrier_nudge_hz);
    o.number_field("plan_discrimination", s.plan_discrimination);
    return o.str();
}

bist::stimulus_output stimulus_from_json(const json_value& v) {
    bist::stimulus_output s;
    s.stimulus = waveform_from_json(v.at("stimulus"));
    s.calibration = waveform_from_json(v.at("calibration"));
    s.calibration_config =
        generator_config_from_json(v.at("calibration_config"));
    s.occupied_bw_calibration_hz =
        num_or_nan(v.at("occupied_bw_calibration_hz"));
    s.occupied_bw_graded_hz = num_or_nan(v.at("occupied_bw_graded_hz"));
    s.plan = band_plan_from_json(v.at("plan"));
    s.carrier_hz = num_or_nan(v.at("carrier_hz"));
    s.carrier_nudge_hz = num_or_nan(v.at("carrier_nudge_hz"));
    s.plan_discrimination = num_or_nan(v.at("plan_discrimination"));
    return s;
}

std::string tx_capture_json(const bist::tx_capture_output& c) {
    SDRBIST_EXPECTS(c.capture_input != nullptr &&
                    c.spectrum_input != nullptr);
    json_object_writer o;
    o.field("tx_out", tx_output_json(c.tx_out));
    o.field("calibration_tx_out", tx_output_json(c.calibration_tx_out));
    o.field("capture_input", passband_json(*c.capture_input));
    o.field("spectrum_input", passband_json(*c.spectrum_input));
    o.field("ranging", ranging_json(c.ranging));
    o.field("capture", dual_rate_json(c.capture));
    o.number_field("programmed_delay_s", c.programmed_delay_s);
    o.bool_field("dual_rate_conditions_ok", c.dual_rate_conditions_ok);
    o.number_field("max_search_delay_s", c.max_search_delay_s);
    return o.str();
}

bist::tx_capture_output tx_capture_from_json(const json_value& v) {
    bist::tx_capture_output c;
    c.tx_out = tx_output_from_json(v.at("tx_out"));
    c.calibration_tx_out = tx_output_from_json(v.at("calibration_tx_out"));
    c.capture_input = passband_from_json(v.at("capture_input"));
    c.spectrum_input = passband_from_json(v.at("spectrum_input"));
    c.ranging = ranging_from_json(v.at("ranging"));
    c.capture = dual_rate_from_json(v.at("capture"));
    c.programmed_delay_s = num_or_nan(v.at("programmed_delay_s"));
    c.dual_rate_conditions_ok = v.at("dual_rate_conditions_ok").as_bool();
    c.max_search_delay_s = num_or_nan(v.at("max_search_delay_s"));
    return c;
}

std::string calibration_json(const bist::calibration_output& c) {
    json_object_writer o;
    o.field("probe_times", double_vector_json(c.probe_times));
    o.field("skew", skew_json(c.skew));
    return o.str();
}

bist::calibration_output calibration_from_json(const json_value& v) {
    bist::calibration_output c;
    c.probe_times = double_vector_from_json(v.at("probe_times"));
    c.skew = skew_from_json(v.at("skew"));
    return c;
}

std::string reconstruction_json(const bist::reconstruction_output& r) {
    json_object_writer o;
    o.field("spectrum_ranging", ranging_json(r.spectrum_ranging));
    o.field("spectrum_capture", capture_json(r.spectrum_capture));
    json_object_writer env;
    env.field("samples", complex_vector_json(r.envelope.samples));
    env.number_field("rate", r.envelope.rate);
    env.number_field("t0", r.envelope.t0);
    o.field("envelope", env.str());
    return o.str();
}

bist::reconstruction_output reconstruction_from_json(const json_value& v) {
    bist::reconstruction_output r;
    r.spectrum_ranging = ranging_from_json(v.at("spectrum_ranging"));
    r.spectrum_capture = capture_from_json(v.at("spectrum_capture"));
    const auto& env = v.at("envelope");
    r.envelope.samples = complex_vector_from_json(env.at("samples"));
    r.envelope.rate = num_or_nan(env.at("rate"));
    r.envelope.t0 = num_or_nan(env.at("t0"));
    return r;
}

std::string grading_json(const bist::grading_output& g) {
    json_object_writer o;
    o.field("mask", mask_json(g.mask));
    o.field("evm", evm_json(g.evm));
    o.bool_field("evm_pass", g.evm_pass);
    json_object_writer acpr;
    acpr.number_field("main_power", g.acpr.main_power);
    acpr.number_field("lower_dbc", g.acpr.lower_dbc);
    acpr.number_field("upper_dbc", g.acpr.upper_dbc);
    o.field("acpr", acpr.str());
    o.number_field("acpr_limit_dbc", g.acpr_limit_dbc);
    o.bool_field("acpr_pass", g.acpr_pass);
    o.number_field("occupied_bw_hz", g.occupied_bw_hz);
    o.number_field("measured_output_rms", g.measured_output_rms);
    o.number_field("min_output_rms", g.min_output_rms);
    o.bool_field("power_pass", g.power_pass);
    return o.str();
}

bist::grading_output grading_from_json(const json_value& v) {
    bist::grading_output g;
    g.mask = mask_from_json(v.at("mask"));
    g.evm = evm_from_json(v.at("evm"));
    g.evm_pass = v.at("evm_pass").as_bool();
    const auto& acpr = v.at("acpr");
    g.acpr.main_power = num_or_nan(acpr.at("main_power"));
    g.acpr.lower_dbc = num_or_nan(acpr.at("lower_dbc"));
    g.acpr.upper_dbc = num_or_nan(acpr.at("upper_dbc"));
    g.acpr_limit_dbc = num_or_nan(v.at("acpr_limit_dbc"));
    g.acpr_pass = v.at("acpr_pass").as_bool();
    g.occupied_bw_hz = num_or_nan(v.at("occupied_bw_hz"));
    g.measured_output_rms = num_or_nan(v.at("measured_output_rms"));
    g.min_output_rms = num_or_nan(v.at("min_output_rms"));
    g.power_pass = v.at("power_pass").as_bool();
    return g;
}

} // namespace sdrbist::campaign

#include "campaign/artefact_store/byte_codec.hpp"

#include <cstdint>
#include <vector>

#include "core/contracts.hpp"

namespace sdrbist::campaign {

namespace {

// Matcher parameters.  window must stay a power of two; chain_limit bounds
// the worst-case encode cost on adversarial input without affecting
// determinism (the walk order is fixed).
constexpr std::size_t min_match = 4;
constexpr std::size_t window = 1u << 16;
constexpr std::size_t hash_bits = 15;
constexpr std::size_t chain_limit = 64;

void put_varint(std::string& out, std::uint64_t v) {
    while (v >= 0x80) {
        out.push_back(static_cast<char>(0x80 | (v & 0x7F)));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

std::uint64_t get_varint(std::string_view in, std::size_t& pos) {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
        SDRBIST_EXPECTS(pos < in.size() && shift < 64);
        const auto byte = static_cast<unsigned char>(in[pos++]);
        v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
        if ((byte & 0x80) == 0)
            return v;
        shift += 7;
    }
}

std::uint32_t hash4(const char* p) {
    std::uint32_t v;
    // Byte-order independent: assemble explicitly.
    v = static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24);
    return (v * 2654435761u) >> (32 - hash_bits);
}

} // namespace

std::string byte_codec_compress(std::string_view raw) {
    std::string out;
    out.reserve(raw.size() / 2 + 16);

    // head[h] / chain[i & (window-1)]: positions of previous occurrences of
    // each 4-byte hash, newest first.  npos marks an empty slot.
    constexpr std::size_t npos = static_cast<std::size_t>(-1);
    std::vector<std::size_t> head(std::size_t{1} << hash_bits, npos);
    std::vector<std::size_t> chain(window, npos);

    const std::size_t n = raw.size();
    std::size_t lit_start = 0; // first byte of the pending literal run
    std::size_t i = 0;

    auto flush_literals = [&](std::size_t upto) {
        std::size_t pos = lit_start;
        while (pos < upto) {
            // Varint length then raw bytes; cap nothing — one run is fine.
            const std::size_t len = upto - pos;
            put_varint(out, static_cast<std::uint64_t>(len) << 1);
            out.append(raw.data() + pos, len);
            pos = upto;
        }
        lit_start = upto;
    };

    auto insert = [&](std::size_t pos) {
        const std::uint32_t h = hash4(raw.data() + pos);
        chain[pos & (window - 1)] = head[h];
        head[h] = pos;
    };

    while (i + min_match <= n) {
        // Find the longest previous match within the window, preferring
        // the most recent occurrence on ties (shortest distance).
        std::size_t best_len = 0;
        std::size_t best_pos = npos;
        std::size_t cand = head[hash4(raw.data() + i)];
        for (std::size_t steps = 0;
             cand != npos && steps < chain_limit &&
             cand + window > i && cand < i;
             cand = chain[cand & (window - 1)], ++steps) {
            const std::size_t limit = n - i;
            std::size_t len = 0;
            while (len < limit && raw[cand + len] == raw[i + len])
                ++len;
            if (len > best_len) {
                best_len = len;
                best_pos = cand;
            }
        }

        if (best_len >= min_match) {
            flush_literals(i);
            put_varint(out, (static_cast<std::uint64_t>(best_len) << 1) | 1);
            put_varint(out, static_cast<std::uint64_t>(i - best_pos));
            // Index every covered position so later matches can reach into
            // this span too.
            const std::size_t end = i + best_len;
            for (; i < end && i + min_match <= n; ++i)
                insert(i);
            i = end;
            lit_start = end;
        } else {
            insert(i);
            ++i;
        }
    }
    flush_literals(n);
    return out;
}

std::string byte_codec_decompress(std::string_view packed,
                                  std::size_t raw_size) {
    std::string out;
    out.reserve(raw_size);
    std::size_t pos = 0;
    while (out.size() < raw_size) {
        const std::uint64_t token = get_varint(packed, pos);
        const std::size_t len = static_cast<std::size_t>(token >> 1);
        SDRBIST_EXPECTS(len > 0 && out.size() + len <= raw_size);
        if ((token & 1) == 0) {
            SDRBIST_EXPECTS(pos + len <= packed.size());
            out.append(packed.data() + pos, len);
            pos += len;
        } else {
            const std::size_t dist =
                static_cast<std::size_t>(get_varint(packed, pos));
            SDRBIST_EXPECTS(dist >= 1 && dist <= out.size() &&
                            dist <= window);
            // Overlapping copies are the RLE case: copy byte-by-byte.
            std::size_t src = out.size() - dist;
            for (std::size_t k = 0; k < len; ++k)
                out.push_back(out[src + k]);
        }
    }
    SDRBIST_EXPECTS(pos == packed.size());
    return out;
}

} // namespace sdrbist::campaign

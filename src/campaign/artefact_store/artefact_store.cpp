#include "campaign/artefact_store/artefact_store.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h> // getpid: temp names must be unique across processes
#endif

#include "bist/config_canonical.hpp"
#include "campaign/artefact_store/byte_codec.hpp"
#include "campaign/artefact_store/stage_codec.hpp"
#include "campaign/cache.hpp" // quarantine_file
#include "core/contracts.hpp"
#include "core/fault_injection.hpp"
#include "core/hash.hpp"
#include "core/telemetry.hpp"

namespace sdrbist::campaign {

namespace fs = std::filesystem;

namespace {

constexpr const char* store_extension = ".sab";

bool is_hex_key(const std::string& stem) {
    if (stem.size() != 16)
        return false;
    for (const char c : stem)
        if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
            return false;
    return true;
}

/// "<16-hex>-<stage-name>" → the stage, or false when the name is not one
/// of the five store entry names.
bool parse_entry_stem(const std::string& stem, bist::stage& out) {
    if (stem.size() < 18 || !is_hex_key(stem.substr(0, 16)) ||
        stem[16] != '-')
        return false;
    const std::string name = stem.substr(17);
    for (const bist::stage s : bist::stage_order) {
        if (bist::to_string(s) == name) {
            out = s;
            return true;
        }
    }
    return false;
}

std::string entry_header(bist::stage s, std::uint64_t digest,
                         std::size_t raw_bytes, const std::string& payload) {
    json_object_writer h;
    h.size_field("store_version",
                 static_cast<std::size_t>(store_format_version));
    h.size_field("codec", static_cast<std::size_t>(byte_codec_version));
    h.string_field("stage", bist::to_string(s));
    h.string_field("digest", fnv1a64::hex_digest(digest));
    h.size_field("stage_canonical_version",
                 static_cast<std::size_t>(bist::stage_canonical_version));
    h.size_field("raw_bytes", raw_bytes);
    h.size_field("payload_bytes", payload.size());
    h.string_field("payload_fnv",
                   fnv1a64::hex_digest(fnv1a64::hash(payload)));
    return h.str();
}

/// Best-effort LRU touch: a hit makes the entry "recently used" for GC.
void touch_mtime(const fs::path& path) {
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
}

} // namespace

// ---------------------------------------------------------------------------
// stage_artefact_store
// ---------------------------------------------------------------------------

stage_artefact_store::stage_artefact_store(std::string dir)
    : dir_(std::move(dir)) {
    SDRBIST_EXPECTS(!dir_.empty());
    std::error_code ec;
    fs::create_directories(dir_, ec);
    SDRBIST_EXPECTS(!ec && fs::is_directory(dir_));
}

std::string stage_artefact_store::path_for(std::uint64_t digest,
                                           bist::stage s) const {
    return (fs::path(dir_) / (fnv1a64::hex_digest(digest) + "-" +
                              bist::to_string(s) + store_extension))
        .string();
}

std::string stage_artefact_store::load_raw(std::uint64_t digest,
                                           bist::stage s) {
    const telemetry::scoped_span span(telemetry::category::cache,
                                      "store.load");
    fault_injection::fire(fault_injection::site::store_load);
    const std::string path = path_for(digest, s);
    bool corrupt = false;
    {
        std::ifstream in(path, std::ios::binary);
        if (in.good()) {
            std::ostringstream buffer;
            buffer << in.rdbuf();
            std::string bytes = buffer.str();
            // Injected load faults garble the just-read bytes, driving the
            // same quarantine path a real on-disk corruption would.
            fault_injection::corrupt(fault_injection::site::store_load,
                                     bytes);
            try {
                const std::size_t nl = bytes.find('\n');
                SDRBIST_EXPECTS(nl != std::string::npos);
                const json_value header =
                    parse_json(bytes.substr(0, nl));
                const bool skewed =
                    static_cast<int>(
                        header.at("store_version").as_number()) !=
                        store_format_version ||
                    static_cast<int>(header.at("codec").as_number()) !=
                        byte_codec_version ||
                    static_cast<int>(
                        header.at("stage_canonical_version").as_number()) !=
                        bist::stage_canonical_version;
                if (!skewed) {
                    // Current version: the entry must be exactly what its
                    // name claims, byte-verified.
                    SDRBIST_EXPECTS(header.at("stage").as_string() ==
                                    bist::to_string(s));
                    SDRBIST_EXPECTS(header.at("digest").as_string() ==
                                    fnv1a64::hex_digest(digest));
                    const std::string payload = bytes.substr(nl + 1);
                    SDRBIST_EXPECTS(
                        payload.size() ==
                        static_cast<std::size_t>(
                            header.at("payload_bytes").as_number()));
                    SDRBIST_EXPECTS(
                        fnv1a64::hex_digest(fnv1a64::hash(payload)) ==
                        header.at("payload_fnv").as_string());
                    std::string raw = byte_codec_decompress(
                        payload, static_cast<std::size_t>(
                                     header.at("raw_bytes").as_number()));
                    touch_mtime(path);
                    hits_.fetch_add(1, std::memory_order_relaxed);
                    telemetry::count(telemetry::counter::store_hits);
                    bytes_.fetch_add(raw.size(),
                                     std::memory_order_relaxed);
                    telemetry::count(telemetry::counter::store_bytes,
                                     raw.size());
                    return raw;
                }
                // Version skew is a plain miss — cache-gc's business.
            } catch (const std::exception&) {
                corrupt = true; // truncated / garbled / checksum mismatch
            }
        }
    }
    // Move the wreck into quarantine/ so the recompute publishes into a
    // clean slot and the evidence survives for inspection.
    if (corrupt && quarantine_file(path))
        quarantined_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    telemetry::count(telemetry::counter::store_misses);
    return {};
}

void stage_artefact_store::store_raw(std::uint64_t digest, bist::stage s,
                                     const std::string& raw) {
    const telemetry::scoped_span span(telemetry::category::cache,
                                      "store.store");
    // Atomic publish, mirroring scenario_cache::store: unique temp in the
    // store directory, then rename over the final path.  Concurrent
    // writers of the same digest produce identical content; last rename
    // wins.  Best-effort by design — a failed publish degrades to a
    // future miss, exactly like a real I/O failure.
#if defined(__unix__) || defined(__APPLE__)
    const std::uint64_t process_tag = static_cast<std::uint64_t>(::getpid());
#else
    const std::uint64_t process_tag =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
#endif
    static std::atomic<std::uint64_t> sequence{0};
    const std::string path = path_for(digest, s);
    const std::string tmp =
        path + ".tmp." + fnv1a64::hex_digest(process_tag) + "." +
        std::to_string(sequence.fetch_add(1, std::memory_order_relaxed));
    try {
        fault_injection::fire(fault_injection::site::store_store);
        const std::string payload = byte_codec_compress(raw);
        std::string body = entry_header(s, digest, raw.size(), payload);
        body += '\n';
        body += payload;
        fault_injection::corrupt(fault_injection::site::store_store, body);
        {
            std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
            out << body;
            out.flush();
            if (!out.good()) {
                std::error_code ec;
                fs::remove(tmp, ec);
                return;
            }
        }
        std::error_code ec;
        fs::rename(tmp, path, ec);
        if (ec)
            fs::remove(tmp, ec);
    } catch (const std::exception&) {
        std::error_code ec;
        fs::remove(tmp, ec);
    }
}

std::shared_ptr<const bist::stimulus_output>
stage_artefact_store::load_stimulus(std::uint64_t digest) {
    const std::string raw = load_raw(digest, bist::stage::stimulus);
    if (raw.empty())
        return nullptr;
    return std::make_shared<const bist::stimulus_output>(
        stimulus_from_json(parse_json(raw)));
}

std::shared_ptr<const bist::tx_capture_output>
stage_artefact_store::load_tx_capture(std::uint64_t digest) {
    const std::string raw = load_raw(digest, bist::stage::tx_capture);
    if (raw.empty())
        return nullptr;
    return std::make_shared<const bist::tx_capture_output>(
        tx_capture_from_json(parse_json(raw)));
}

std::shared_ptr<const bist::calibration_output>
stage_artefact_store::load_calibration(std::uint64_t digest) {
    const std::string raw = load_raw(digest, bist::stage::calibration);
    if (raw.empty())
        return nullptr;
    return std::make_shared<const bist::calibration_output>(
        calibration_from_json(parse_json(raw)));
}

std::shared_ptr<const bist::reconstruction_output>
stage_artefact_store::load_reconstruction(std::uint64_t digest) {
    const std::string raw = load_raw(digest, bist::stage::reconstruction);
    if (raw.empty())
        return nullptr;
    return std::make_shared<const bist::reconstruction_output>(
        reconstruction_from_json(parse_json(raw)));
}

std::shared_ptr<const bist::grading_output>
stage_artefact_store::load_grading(std::uint64_t digest) {
    const std::string raw = load_raw(digest, bist::stage::grading);
    if (raw.empty())
        return nullptr;
    return std::make_shared<const bist::grading_output>(
        grading_from_json(parse_json(raw)));
}

void stage_artefact_store::store_stimulus(std::uint64_t digest,
                                          const bist::stimulus_output& out) {
    store_raw(digest, bist::stage::stimulus, stimulus_json(out));
}

void stage_artefact_store::store_tx_capture(
    std::uint64_t digest, const bist::tx_capture_output& out) {
    store_raw(digest, bist::stage::tx_capture, tx_capture_json(out));
}

void stage_artefact_store::store_calibration(
    std::uint64_t digest, const bist::calibration_output& out) {
    store_raw(digest, bist::stage::calibration, calibration_json(out));
}

void stage_artefact_store::store_reconstruction(
    std::uint64_t digest, const bist::reconstruction_output& out) {
    store_raw(digest, bist::stage::reconstruction,
              reconstruction_json(out));
}

void stage_artefact_store::store_grading(std::uint64_t digest,
                                         const bist::grading_output& out) {
    store_raw(digest, bist::stage::grading, grading_json(out));
}

// ---------------------------------------------------------------------------
// Store lifecycle tooling
// ---------------------------------------------------------------------------

namespace {

/// How a store-directory file would behave on the next warm run.
enum class entry_class { entry, stale, corrupt, stray_tmp, foreign };

/// Classify one file the way stage_artefact_store::load_raw would treat
/// it.  Header-only (the payload checksum is load's business): a scan must
/// stay cheap on multi-GB stores.  Sets `version` for files that parse far
/// enough to expose a store_version.
entry_class classify(const fs::path& path, int& version) {
    const std::string filename = path.filename().string();
    // Leftover atomic-publish temp: "<stem>.sab.tmp.<tag>.<seq>".
    if (filename.size() > 16 && is_hex_key(filename.substr(0, 16)) &&
        filename.find(".sab.tmp.") != std::string::npos)
        return entry_class::stray_tmp;
    if (path.extension() != store_extension)
        return entry_class::foreign;
    bist::stage named_stage{};
    if (!parse_entry_stem(path.stem().string(), named_stage))
        return entry_class::foreign;

    std::ifstream in(path, std::ios::binary);
    if (!in.good())
        return entry_class::corrupt;
    std::string header_line;
    if (!std::getline(in, header_line))
        return entry_class::corrupt;
    try {
        const json_value header = parse_json(header_line);
        version = static_cast<int>(header.at("store_version").as_number());
        if (version != store_format_version ||
            static_cast<int>(header.at("codec").as_number()) !=
                byte_codec_version ||
            static_cast<int>(
                header.at("stage_canonical_version").as_number()) !=
                bist::stage_canonical_version)
            return entry_class::stale;
        if (header.at("stage").as_string() != bist::to_string(named_stage) ||
            header.at("digest").as_string() !=
                path.stem().string().substr(0, 16))
            return entry_class::corrupt;
        std::error_code ec;
        const std::uintmax_t size = fs::file_size(path, ec);
        if (ec || size != header_line.size() + 1 +
                              static_cast<std::uintmax_t>(
                                  header.at("payload_bytes").as_number()))
            return entry_class::corrupt;
        return entry_class::entry;
    } catch (const std::exception&) {
        return entry_class::corrupt;
    }
}

/// One healthy entry, as GC sees it.
struct healthy_entry {
    fs::path path;
    std::uintmax_t size = 0;
    fs::file_time_type mtime{};
    std::string filename; ///< deterministic tie-break for equal mtimes
};

template <typename OnRemovable, typename OnEntry>
store_dir_stats walk_store_dir(const std::string& dir,
                               OnRemovable&& on_removable,
                               OnEntry&& on_entry) {
    SDRBIST_EXPECTS(fs::is_directory(dir));
    store_dir_stats stats;
    for (const auto& entry : fs::directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        int version = -1;
        const entry_class c = classify(entry.path(), version);
        if (c == entry_class::foreign)
            continue; // not ours: never counted, never touched
        std::error_code ec;
        const std::uintmax_t size = fs::file_size(entry.path(), ec);
        stats.bytes += ec ? 0 : size;
        switch (c) {
        case entry_class::entry:
            ++stats.entries;
            ++stats.version_histogram[version];
            on_entry(entry.path(), ec ? 0 : size);
            break;
        case entry_class::stale:
            ++stats.stale;
            ++stats.version_histogram[version];
            on_removable(entry.path(), ec ? 0 : size);
            break;
        case entry_class::corrupt:
            ++stats.corrupt;
            on_removable(entry.path(), ec ? 0 : size);
            break;
        case entry_class::stray_tmp:
            ++stats.stray_tmp;
            on_removable(entry.path(), ec ? 0 : size);
            break;
        case entry_class::foreign:
            break;
        }
    }
    return stats;
}

} // namespace

store_dir_stats scan_store_dir(const std::string& dir) {
    return walk_store_dir(
        dir, [](const fs::path&, std::uintmax_t) {},
        [](const fs::path&, std::uintmax_t) {});
}

store_gc_result gc_store_dir(const std::string& dir,
                             store_gc_policy policy) {
    store_gc_result out;
    std::vector<healthy_entry> healthy;
    const store_dir_stats stats = walk_store_dir(
        dir,
        [&](const fs::path& path, std::uintmax_t size) {
            std::error_code ec;
            if (fs::remove(path, ec) && !ec) {
                ++out.removed;
                out.bytes_freed += size;
            }
        },
        [&](const fs::path& path, std::uintmax_t size) {
            std::error_code ec;
            healthy_entry e;
            e.path = path;
            e.size = size;
            e.mtime = fs::last_write_time(path, ec);
            e.filename = path.filename().string();
            healthy.push_back(std::move(e));
        });
    out.scanned = stats.files();

    const auto evict = [&](const healthy_entry& e) {
        std::error_code ec;
        if (fs::remove(e.path, ec) && !ec) {
            ++out.evicted;
            out.bytes_freed += e.size;
            telemetry::count(telemetry::counter::store_evictions);
        }
    };

    // Age budget first: idleness is absolute, independent of store size.
    if (policy.max_age_s > 0) {
        const auto now = fs::file_time_type::clock::now();
        const auto horizon =
            now - std::chrono::seconds(
                      static_cast<std::int64_t>(policy.max_age_s));
        std::vector<healthy_entry> young;
        young.reserve(healthy.size());
        for (auto& e : healthy) {
            if (e.mtime < horizon)
                evict(e);
            else
                young.push_back(std::move(e));
        }
        healthy = std::move(young);
    }

    // Size / count budgets: evict least-recently-used first (oldest mtime;
    // filename breaks ties deterministically).
    if (policy.max_bytes > 0 || policy.max_entries > 0) {
        std::sort(healthy.begin(), healthy.end(),
                  [](const healthy_entry& a, const healthy_entry& b) {
                      if (a.mtime != b.mtime)
                          return a.mtime < b.mtime;
                      return a.filename < b.filename;
                  });
        std::uintmax_t total = 0;
        for (const auto& e : healthy)
            total += e.size;
        std::size_t first_kept = 0;
        while (first_kept < healthy.size() &&
               ((policy.max_bytes > 0 && total > policy.max_bytes) ||
                (policy.max_entries > 0 &&
                 healthy.size() - first_kept > policy.max_entries))) {
            total -= healthy[first_kept].size;
            evict(healthy[first_kept]);
            ++first_kept;
        }
        healthy.erase(healthy.begin(),
                      healthy.begin() +
                          static_cast<std::ptrdiff_t>(first_kept));
    }

    out.kept = healthy.size();
    return out;
}

} // namespace sdrbist::campaign

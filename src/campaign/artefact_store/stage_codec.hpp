/// \file stage_codec.hpp
/// \brief Lossless JSON serialisation of the five `stages.hpp` stage
///        outputs — the raw payload the stage-artefact store compresses.
///
/// Same fidelity rules as the scenario-cache report codec (cache.cpp):
/// doubles in shortest round-trip form (bijective on every platform),
/// complex vectors as flat `[re,im,...]` arrays, 64-bit integers as
/// decimal strings, NaN/inf through JSON `null` back to quiet NaN.  Every
/// `X_from_json(parse_json(X_json(x)))` recovers `x` element-exactly —
/// which is what lets a store hit stand in for a stage compute under the
/// byte-identity contract.
///
/// The nested `envelope_passband` evaluators (tx outputs, capture inputs)
/// are serialised by their construction parameters (envelope samples,
/// rate, carrier, interpolator half-taps) and rebuilt through the public
/// constructor: the polyphase LUT is a deterministic function of those, so
/// the rebuilt object evaluates bit-identically.
///
/// Field-set or rendering changes MUST bump the store format version
/// (artefact_store.hpp) so stale entries read as misses.
#pragma once

#include <string>

#include "bist/stages.hpp"
#include "campaign/export.hpp"

namespace sdrbist::campaign {

[[nodiscard]] std::string stimulus_json(const bist::stimulus_output& s);
[[nodiscard]] bist::stimulus_output stimulus_from_json(const json_value& v);

[[nodiscard]] std::string tx_capture_json(const bist::tx_capture_output& c);
[[nodiscard]] bist::tx_capture_output
tx_capture_from_json(const json_value& v);

[[nodiscard]] std::string
calibration_json(const bist::calibration_output& c);
[[nodiscard]] bist::calibration_output
calibration_from_json(const json_value& v);

[[nodiscard]] std::string
reconstruction_json(const bist::reconstruction_output& r);
[[nodiscard]] bist::reconstruction_output
reconstruction_from_json(const json_value& v);

[[nodiscard]] std::string grading_json(const bist::grading_output& g);
[[nodiscard]] bist::grading_output grading_from_json(const json_value& v);

} // namespace sdrbist::campaign

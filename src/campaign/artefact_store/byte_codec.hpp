/// \file byte_codec.hpp
/// \brief Self-contained byte-oriented compression for stage-artefact
///        store payloads: LZ77 (literal runs + back-references) with
///        varint-coded tokens.  No external dependencies.
///
/// The store serialises stage outputs as shortest-form JSON (highly
/// repetitive: field names, `],[` separators, long runs of similar
/// mantissa text), which a small dictionary coder compresses well — the
/// point is to make multi-MB reconstruction artefacts affordable on disk,
/// not to chase ratio records.  The format is deliberately dumb and
/// versioned:
///
///   stream := token*
///   token  := varint v
///             v even → literal run of (v >> 1) bytes, which follow raw
///             v odd  → match of length (v >> 1) >= min_match, followed by
///                      varint distance (1 .. window behind the cursor)
///
/// Decoding stops when exactly `raw_size` bytes have been produced (the
/// caller carries the raw size in the entry header); anything else —
/// truncation, overrun, zero/oversized distance — throws
/// `contract_violation`, which the store treats as a corrupt entry.
///
/// The encoder is a greedy hash-chained matcher and is deterministic: one
/// input always yields one output byte stream.  Any change to the token
/// grammar or the matcher's tie-breaking MUST bump `byte_codec_version`
/// (part of every entry header; skew reads as a plain miss).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace sdrbist::campaign {

/// Version of the token grammar + encoder behaviour.
inline constexpr int byte_codec_version = 1;

/// Compress `raw` into the token stream described above.
[[nodiscard]] std::string byte_codec_compress(std::string_view raw);

/// Inverse of byte_codec_compress.  `raw_size` is the expected decoded
/// size (from the entry header); throws contract_violation when the
/// stream is malformed or does not decode to exactly `raw_size` bytes.
[[nodiscard]] std::string byte_codec_decompress(std::string_view packed,
                                                std::size_t raw_size);

} // namespace sdrbist::campaign

/// \file artefact_store.hpp
/// \brief Persistent, content-addressed store of BIST stage outputs.
///
/// The scenario cache (campaign/cache.hpp) keys *finished reports*; this
/// store keys the five intermediate stage outputs of the staged pipeline
/// by their chained input digests (bist/config_canonical.hpp).  Equal
/// digests guarantee bit-identical stage outputs, so a store hit skips the
/// stage compute entirely — across runs and across processes, not just
/// within one campaign's in-memory stage pool.
///
/// Entry layout (`<dir>/<16-hex-digest>-<stage-name>.sab`):
///
///   one JSON header line
///     {"store_version":V,"codec":C,"stage":"...","digest":"...",
///      "stage_canonical_version":S,"raw_bytes":N,"payload_bytes":M,
///      "payload_fnv":"..."}\n
///   followed by exactly M bytes of byte_codec-compressed payload — the
///   compressed form of the stage_codec JSON serialisation (N raw bytes).
///
/// Load semantics mirror the scenario cache: a missing file is a plain
/// miss; version skew (store_version, codec, stage_canonical_version) is a
/// plain miss that stays put for `cache-gc`; anything corrupt (garbled
/// header, size or checksum mismatch, name/content disagreement, payload
/// that fails to decompress or decode) is quarantined into
/// `<dir>/quarantine/` and read as a miss.  Publishes are atomic
/// (unique temp + rename) and best-effort.  Hits touch the entry's mtime
/// (best-effort) so GC can evict least-recently-used entries first.
///
/// Telemetry: counters `store.hits` / `store.misses` / `store.bytes` (raw
/// bytes served by hits) are bumped at the same sites as the store's own
/// atomics, so counter totals equal result totals exactly; `cache-gc`
/// bumps `store.evictions` per budget-evicted entry.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "bist/pipeline.hpp"

namespace sdrbist::campaign {

/// On-disk entry format version (header layout + stage_codec field sets).
/// Any change to either MUST bump this so stale entries read as misses.
inline constexpr int store_format_version = 1;

/// Compressed on-disk implementation of bist::stage_snapshot_store.
/// Thread-safe: concurrent loads/stores from any number of sessions and
/// processes sharing the directory are safe (atomic publish, last rename
/// wins with identical content).
class stage_artefact_store final : public bist::stage_snapshot_store {
public:
    /// Opens (creating if needed) the store directory.  Throws
    /// contract_violation when the directory cannot be created.
    explicit stage_artefact_store(std::string dir);

    [[nodiscard]] std::shared_ptr<const bist::stimulus_output>
    load_stimulus(std::uint64_t digest) override;
    [[nodiscard]] std::shared_ptr<const bist::tx_capture_output>
    load_tx_capture(std::uint64_t digest) override;
    [[nodiscard]] std::shared_ptr<const bist::calibration_output>
    load_calibration(std::uint64_t digest) override;
    [[nodiscard]] std::shared_ptr<const bist::reconstruction_output>
    load_reconstruction(std::uint64_t digest) override;
    [[nodiscard]] std::shared_ptr<const bist::grading_output>
    load_grading(std::uint64_t digest) override;

    void store_stimulus(std::uint64_t digest,
                        const bist::stimulus_output& out) override;
    void store_tx_capture(std::uint64_t digest,
                          const bist::tx_capture_output& out) override;
    void store_calibration(std::uint64_t digest,
                           const bist::calibration_output& out) override;
    void store_reconstruction(std::uint64_t digest,
                              const bist::reconstruction_output& out) override;
    void store_grading(std::uint64_t digest,
                       const bist::grading_output& out) override;

    /// File path an entry lives at.
    [[nodiscard]] std::string path_for(std::uint64_t digest,
                                       bist::stage s) const;

    [[nodiscard]] const std::string& dir() const { return dir_; }

    /// Result counters — exactly equal to the telemetry counters this
    /// instance emitted (bumped at the same sites).
    [[nodiscard]] std::uint64_t hits() const {
        return hits_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t misses() const {
        return misses_.load(std::memory_order_relaxed);
    }
    /// Raw (uncompressed) bytes served by hits.
    [[nodiscard]] std::uint64_t bytes_served() const {
        return bytes_.load(std::memory_order_relaxed);
    }
    /// Corrupt entries moved to quarantine/ by this instance.
    [[nodiscard]] std::uint64_t quarantined() const {
        return quarantined_.load(std::memory_order_relaxed);
    }

private:
    /// Read + verify + decompress one entry; empty on miss (counted).
    [[nodiscard]] std::string load_raw(std::uint64_t digest, bist::stage s);
    /// Compress + atomically publish one entry (best-effort).
    void store_raw(std::uint64_t digest, bist::stage s,
                   const std::string& raw);

    std::string dir_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> bytes_{0};
    std::atomic<std::uint64_t> quarantined_{0};
};

// ---------------------------------------------------------------------------
// Store lifecycle tooling (the CLI's `cache-stats` / `cache-gc`).
// ---------------------------------------------------------------------------

/// One pass over a store directory, classifying every file the store's
/// naming scheme owns (same taxonomy as cache_dir_stats).
struct store_dir_stats {
    std::size_t entries = 0;   ///< readable, current-version entries
    std::size_t stale = 0;     ///< version-skewed (read as plain misses)
    std::size_t corrupt = 0;   ///< garbled header / size / name mismatch
    std::size_t stray_tmp = 0; ///< leftover atomic-publish temp files
    std::uintmax_t bytes = 0;  ///< total size of everything classified
    /// store_version value → entry count (corrupt entries excluded).
    std::map<int, std::size_t> version_histogram;

    [[nodiscard]] std::size_t files() const {
        return entries + stale + corrupt + stray_tmp;
    }
};

/// Classify every store file under `dir` (flat, non-recursive).  Files
/// outside the store's naming scheme are never counted or touched.
/// Throws contract_violation when `dir` is not a directory.
store_dir_stats scan_store_dir(const std::string& dir);

/// Eviction budgets for gc_store_dir.  Zero means "unlimited" for each
/// knob; removal of stale/corrupt/stray files happens regardless.
struct store_gc_policy {
    std::uintmax_t max_bytes = 0;  ///< total healthy-entry byte budget
    std::uint64_t max_age_s = 0;   ///< evict entries idle longer than this
    std::size_t max_entries = 0;   ///< healthy-entry count budget
};

/// Outcome of a garbage collection over a store directory.
struct store_gc_result {
    std::size_t scanned = 0;
    std::size_t removed = 0;  ///< stale/corrupt entries and stray temps
    std::size_t evicted = 0;  ///< healthy entries evicted by the budgets
    std::size_t kept = 0;     ///< healthy entries surviving the pass
    std::uintmax_t bytes_freed = 0;
};

/// Remove everything a warm run could not use (stale, corrupt, stray
/// temps), then apply the budgets to the healthy entries: age first, then
/// evict least-recently-used (oldest mtime, filename as the deterministic
/// tie-break) until both the byte and the entry-count budget hold.  Each
/// budget eviction bumps telemetry counter `store.evictions`.  Files
/// outside the store's naming scheme are never touched.  Throws
/// contract_violation when `dir` is not a directory.
store_gc_result gc_store_dir(const std::string& dir,
                             store_gc_policy policy = {});

} // namespace sdrbist::campaign

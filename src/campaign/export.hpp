/// \file export.hpp
/// \brief Structured campaign-result export: deterministic JSON and CSV,
///        streaming JSONL, plus text-table rendering through core/table.
///
/// Export is deterministic: field order is fixed, numbers are printed in
/// shortest round-trip form, and rows follow the grid order — two campaigns
/// with the same config produce byte-identical artefacts (measured fields
/// can be suppressed via export_options for byte-level comparisons).
#pragma once

#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "campaign/campaign.hpp"
#include "core/table.hpp"

namespace sdrbist::campaign {

/// Controls for the exporters.
struct export_options {
    /// Include the *measured* fields: wall/elapsed timing, worker thread
    /// count and cache hit/miss counters.  None of these is reproducible
    /// run-to-run (a warm rerun flips misses into hits just like it moves
    /// the wall time); disable for byte-identical artefacts.
    bool include_timing = true;
    /// Include the per-scenario rows (the bulk of the payload) in JSON.
    bool include_scenarios = true;
    /// Append the summary row (see summary_json) to JSONL exports.  Off by
    /// default so scenario-rows-only consumers keep a uniform schema.
    bool jsonl_summary = false;
};

/// Full campaign result as a JSON document (objects with fixed key order).
std::string to_json(const campaign_result& result, export_options opt = {});

/// Fault-coverage matrix as CSV: preset,fault,runs,flagged,fail_rate.
std::string coverage_csv(const campaign_result& result);

/// Per-scenario rows as CSV (grid order).
std::string scenarios_csv(const campaign_result& result,
                          export_options opt = {});

/// One scenario row as a JSON object — the payload of the `scenarios`
/// array in to_json() and of one JSONL line.
std::string scenario_json(const scenario_result& r,
                          const export_options& opt = {});

/// All scenario rows as JSONL (one scenario_json object per line, grid
/// order).  Byte-identical to what jsonl_stream leaves on disk after
/// finalise() for the same rows and options.  With `opt.jsonl_summary` a
/// summary row is appended (matching jsonl_stream::finalise(result)).
std::string scenarios_jsonl(const campaign_result& result,
                            export_options opt = {});

/// The JSONL summary row: `{"row":"summary",...}` with the population
/// statistics and — timing on — the cache and stage-reuse counters.
/// Distinguishable from scenario rows by its `row` field.  Only
/// deterministic fields are emitted under `include_timing == false`, so
/// merged-vs-unsharded artefacts stay byte-comparable (stage-reuse totals
/// are partition-dependent: a shard pools less than the whole grid).
std::string summary_json(const campaign_result& result,
                         const export_options& opt = {});

/// Coverage matrix rendered as a core/table text table (presets as rows,
/// faults as columns, cells flagged/runs).
text_table coverage_table(const campaign_result& result);

/// Streaming JSONL sink: emits one scenario row per line *as scenarios
/// complete*, so long grids produce a consumable artefact incrementally
/// (tail -f, partial-failure salvage).  Thread-safe — hand `append` to
/// campaign::run_hooks::on_scenario directly.  Lines land on disk in
/// completion order (flushed per row); finalise() rewrites the file in
/// grid order, making the artefact deterministic and byte-identical to
/// scenarios_jsonl() of the finished result.
class jsonl_stream {
public:
    /// Opens (truncates) `path`.  Throws contract_violation when the file
    /// cannot be created.
    explicit jsonl_stream(std::string path, export_options opt = {});

    /// Destructor finalises if the caller has not (best-effort).
    ~jsonl_stream();

    jsonl_stream(const jsonl_stream&) = delete;
    jsonl_stream& operator=(const jsonl_stream&) = delete;

    /// Append one completed scenario (thread-safe; line is flushed).
    void append(const scenario_result& r);

    /// Restore grid order on disk and close the file.  Rewrites through a
    /// temp file + rename, so a failure (disk full, path removed) leaves
    /// the completion-order artefact intact for salvage.  Idempotent.
    void finalise();

    /// Finalise and append the campaign summary row (summary_json of
    /// `result` under this stream's options).  Byte-identical on disk to
    /// scenarios_jsonl(result, opt) with `opt.jsonl_summary = true`.
    void finalise(const campaign_result& result);

    /// Rows appended so far.
    [[nodiscard]] std::size_t rows() const;

private:
    /// Where one appended row landed in the completion-order file.  Only
    /// coordinates are retained in memory — finalise() re-reads the row
    /// bytes from disk, so the sink's footprint stays O(rows), not
    /// O(artefact), on the long grids it exists for.
    struct row_ref {
        std::size_t grid_index;
        std::size_t offset;
        std::size_t length;
    };

    void finalise_locked(const std::string* summary_row);

    mutable std::mutex mutex_;
    std::string path_;
    export_options opt_;
    std::ofstream out_;
    std::vector<row_ref> rows_;
    std::size_t bytes_written_ = 0;
    bool finalised_ = false;
};

// ---------------------------------------------------------------------------
// Minimal JSON document model + parser, sufficient for everything the
// exporter emits (objects, arrays, strings, finite numbers, bools, null).
// Exists so tests and downstream tools can round-trip campaign artefacts
// without an external dependency.
// ---------------------------------------------------------------------------

class json_value {
public:
    using array = std::vector<json_value>;
    using object = std::map<std::string, json_value>;

    json_value() = default;
    json_value(std::nullptr_t) {}
    json_value(bool b) : v_(b) {}
    json_value(double d) : v_(d) {}
    json_value(std::string s) : v_(std::move(s)) {}
    json_value(array a) : v_(std::move(a)) {}
    json_value(object o) : v_(std::move(o)) {}

    [[nodiscard]] bool is_null() const {
        return std::holds_alternative<std::nullptr_t>(v_);
    }
    [[nodiscard]] bool is_bool() const {
        return std::holds_alternative<bool>(v_);
    }
    [[nodiscard]] bool is_number() const {
        return std::holds_alternative<double>(v_);
    }
    [[nodiscard]] bool is_string() const {
        return std::holds_alternative<std::string>(v_);
    }
    [[nodiscard]] bool is_array() const {
        return std::holds_alternative<array>(v_);
    }
    [[nodiscard]] bool is_object() const {
        return std::holds_alternative<object>(v_);
    }

    /// Typed accessors; throw contract_violation on kind mismatch.
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] double as_number() const;
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] const array& as_array() const;
    [[nodiscard]] const object& as_object() const;

    /// Object member access; throws contract_violation when missing.
    [[nodiscard]] const json_value& at(const std::string& key) const;
    /// Array element access; throws contract_violation when out of range.
    [[nodiscard]] const json_value& at(std::size_t i) const;
    [[nodiscard]] std::size_t size() const;

private:
    std::variant<std::nullptr_t, bool, double, std::string, array, object>
        v_ = nullptr;
};

/// Parse a JSON document.  Throws contract_violation on malformed input.
json_value parse_json(const std::string& text);

/// Render a string as a quoted JSON string literal (RFC 8259 escaping).
/// Shared by the exporters and the bench BENCH_JSON writer.
std::string json_quote(const std::string& s);

/// Render a double as a JSON number: shortest form that round-trips to the
/// same double; `null` for non-finite values (JSON has no nan/inf).
std::string json_number(double v);

/// Parse CSV text (RFC-4180-style quoting) into rows of cells.
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

/// Emits one JSON object with caller-controlled field order (std::map
/// would sort keys; exports fix their own order).  Shared by the campaign
/// exporters and the result-cache serialiser.
class json_object_writer {
public:
    void field(const std::string& key, const std::string& raw_value) {
        if (!first_)
            body_ += ',';
        first_ = false;
        body_ += json_quote(key);
        body_ += ':';
        body_ += raw_value;
    }
    void string_field(const std::string& key, const std::string& value) {
        field(key, json_quote(value));
    }
    void number_field(const std::string& key, double value) {
        field(key, json_number(value));
    }
    void size_field(const std::string& key, std::size_t value) {
        field(key, std::to_string(value));
    }
    void bool_field(const std::string& key, bool value) {
        field(key, value ? "true" : "false");
    }
    [[nodiscard]] std::string str() const { return "{" + body_ + "}"; }

private:
    std::string body_;
    bool first_ = true;
};

} // namespace sdrbist::campaign

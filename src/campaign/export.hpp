/// \file export.hpp
/// \brief Structured campaign-result export: deterministic JSON and CSV,
///        plus text-table rendering through core/table.
///
/// Export is deterministic: field order is fixed, numbers are printed in
/// shortest round-trip form, and rows follow the grid order — two campaigns
/// with the same config produce byte-identical artefacts (timing fields can
/// be suppressed via export_options for byte-level comparisons).
#pragma once

#include <map>
#include <string>
#include <variant>
#include <vector>

#include "campaign/campaign.hpp"
#include "core/table.hpp"

namespace sdrbist::campaign {

/// Controls for the exporters.
struct export_options {
    /// Include wall/elapsed timing fields.  These are measured, hence not
    /// reproducible run-to-run; disable for byte-identical artefacts.
    bool include_timing = true;
    /// Include the per-scenario rows (the bulk of the payload) in JSON.
    bool include_scenarios = true;
};

/// Full campaign result as a JSON document (objects with fixed key order).
std::string to_json(const campaign_result& result, export_options opt = {});

/// Fault-coverage matrix as CSV: preset,fault,runs,flagged,fail_rate.
std::string coverage_csv(const campaign_result& result);

/// Per-scenario rows as CSV (grid order).
std::string scenarios_csv(const campaign_result& result,
                          export_options opt = {});

/// Coverage matrix rendered as a core/table text table (presets as rows,
/// faults as columns, cells flagged/runs).
text_table coverage_table(const campaign_result& result);

// ---------------------------------------------------------------------------
// Minimal JSON document model + parser, sufficient for everything the
// exporter emits (objects, arrays, strings, finite numbers, bools, null).
// Exists so tests and downstream tools can round-trip campaign artefacts
// without an external dependency.
// ---------------------------------------------------------------------------

class json_value {
public:
    using array = std::vector<json_value>;
    using object = std::map<std::string, json_value>;

    json_value() = default;
    json_value(std::nullptr_t) {}
    json_value(bool b) : v_(b) {}
    json_value(double d) : v_(d) {}
    json_value(std::string s) : v_(std::move(s)) {}
    json_value(array a) : v_(std::move(a)) {}
    json_value(object o) : v_(std::move(o)) {}

    [[nodiscard]] bool is_null() const {
        return std::holds_alternative<std::nullptr_t>(v_);
    }
    [[nodiscard]] bool is_bool() const {
        return std::holds_alternative<bool>(v_);
    }
    [[nodiscard]] bool is_number() const {
        return std::holds_alternative<double>(v_);
    }
    [[nodiscard]] bool is_string() const {
        return std::holds_alternative<std::string>(v_);
    }
    [[nodiscard]] bool is_array() const {
        return std::holds_alternative<array>(v_);
    }
    [[nodiscard]] bool is_object() const {
        return std::holds_alternative<object>(v_);
    }

    /// Typed accessors; throw contract_violation on kind mismatch.
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] double as_number() const;
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] const array& as_array() const;
    [[nodiscard]] const object& as_object() const;

    /// Object member access; throws contract_violation when missing.
    [[nodiscard]] const json_value& at(const std::string& key) const;
    /// Array element access; throws contract_violation when out of range.
    [[nodiscard]] const json_value& at(std::size_t i) const;
    [[nodiscard]] std::size_t size() const;

private:
    std::variant<std::nullptr_t, bool, double, std::string, array, object>
        v_ = nullptr;
};

/// Parse a JSON document.  Throws contract_violation on malformed input.
json_value parse_json(const std::string& text);

/// Render a string as a quoted JSON string literal (RFC 8259 escaping).
/// Shared by the exporters and the bench BENCH_JSON writer.
std::string json_quote(const std::string& s);

/// Render a double as a JSON number: shortest form that round-trips to the
/// same double; `null` for non-finite values (JSON has no nan/inf).
std::string json_number(double v);

/// Parse CSV text (RFC-4180-style quoting) into rows of cells.
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

} // namespace sdrbist::campaign

#include "campaign/service/coordinator.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "campaign/journal.hpp"
#include "campaign/service/protocol.hpp"
#include "campaign/shard_io.hpp"
#include "core/contracts.hpp"
#include "core/fault_injection.hpp"

namespace sdrbist::campaign::service {

namespace {

std::string simple_msg(const char* type) {
    json_object_writer o;
    o.string_field("type", type);
    return o.str();
}

std::string error_msg(const std::string& what) {
    json_object_writer o;
    o.string_field("type", "error");
    o.string_field("what", what);
    return o.str();
}

} // namespace

struct coordinator::impl {
    campaign_config config;
    service_config svc;
    std::string identity;
    std::size_t grid_size = 0;
    lease_ledger ledger;
    tcp_listener listener;

    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> next_owner{0};
    std::atomic<std::size_t> workers_seen{0};
    std::atomic<std::size_t> dropped{0};

    std::mutex results_mu;
    std::vector<std::optional<campaign_result>> lease_results;
    std::vector<char> row_seen; ///< first-wins dedupe for hooks.on_scenario

    std::mutex reaper_mu;
    std::condition_variable reaper_cv;

    std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();

    impl(campaign_config grid, service_config s)
        : config(std::move(grid)),
          svc(s),
          identity(campaign_identity(config)),
          grid_size(expand_grid(config).size()),
          ledger(grid_size, s.lease_size),
          listener(s.host, s.port),
          lease_results(ledger.lease_count()),
          row_seen(grid_size, 0) {}

    [[nodiscard]] double now_s() const {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             epoch)
            .count();
    }

    void finish() {
        done.store(true, std::memory_order_release);
        reaper_cv.notify_all();
    }

    /// Periodically re-queue grants whose heartbeats lapsed — the slow
    /// detection path, for workers that wedge without dropping the
    /// connection.  (A dead connection re-queues immediately instead.)
    void reap() {
        std::unique_lock<std::mutex> lock(reaper_mu);
        const auto period = std::chrono::duration<double>(
            std::max(svc.timeout() / 4.0, 0.05));
        while (!done.load(std::memory_order_acquire)) {
            reaper_cv.wait_for(lock, period);
            ledger.requeue_lapsed(now_s(), svc.timeout());
        }
    }

    /// Validate that an incoming lease result is exactly the granted
    /// slice: the right row count, every index inside the range.
    [[nodiscard]] bool lease_result_ok(std::size_t lease,
                                       const campaign_result& r) const {
        if (lease >= ledger.lease_count() || r.grid_size != grid_size)
            return false;
        const lease_range range = ledger.range_of(lease);
        if (r.results.size() != range.size())
            return false;
        for (const auto& row : r.results)
            if (!range.contains(row.sc.index))
                return false;
        return true;
    }

    void handle(tcp_socket sock, const run_hooks& hooks) {
        const std::uint64_t owner = next_owner.fetch_add(1) + 1;
        // Bound every recv so a silent peer cannot pin this thread (and
        // the final join) forever.
        sock.set_recv_timeout(std::max(2.0 * svc.timeout(), 2.0));
        bool welcomed = false;
        try {
            for (;;) {
                const json_value msg = recv_message(sock);
                const std::string type = msg.at("type").as_string();

                if (type == "hello") {
                    const int ver = static_cast<int>(
                        msg.at("protocol_version").as_number());
                    if (ver != protocol_version) {
                        send_frame(sock,
                                   error_msg("protocol version mismatch"));
                        return;
                    }
                    if (msg.at("identity").as_string() != identity) {
                        send_frame(
                            sock,
                            error_msg("campaign identity mismatch: the "
                                      "worker grid flags differ from the "
                                      "coordinator's"));
                        return;
                    }
                    welcomed = true;
                    workers_seen.fetch_add(1, std::memory_order_relaxed);
                    json_object_writer o;
                    o.string_field("type", "welcome");
                    o.size_field("protocol_version",
                                 static_cast<std::size_t>(protocol_version));
                    o.size_field("grid_size", grid_size);
                    o.size_field("lease_count", ledger.lease_count());
                    // The beat cadence is the coordinator's to dictate:
                    // its reaper times out at 3 × this, so workers must
                    // not rely on their own --heartbeat-s matching.
                    o.number_field("heartbeat_s", svc.heartbeat_s);
                    send_frame(sock, o.str());
                    continue;
                }
                if (!welcomed) {
                    send_frame(sock, error_msg("hello required first"));
                    return;
                }

                if (type == "request") {
                    if (done.load(std::memory_order_acquire)) {
                        send_frame(sock, simple_msg("done"));
                        continue; // the worker disconnects; recv EOFs us out
                    }
                    if (const auto g = ledger.grant(owner, now_s())) {
                        json_object_writer o;
                        o.string_field("type", "lease");
                        o.size_field("lease", g->lease);
                        o.size_field("generation",
                                     static_cast<std::size_t>(g->generation));
                        o.size_field("begin", g->range.begin);
                        o.size_field("end", g->range.end);
                        send_frame(sock, o.str());
                    } else if (ledger.all_complete()) {
                        send_frame(sock, simple_msg("done"));
                    } else {
                        // Everything still outstanding is granted
                        // elsewhere; the worker naps and asks again (it
                        // may inherit a re-queued lease).
                        send_frame(sock, simple_msg("wait"));
                    }
                    continue;
                }

                const auto lease =
                    static_cast<std::size_t>(msg.at("lease").as_number());
                const auto generation = static_cast<std::uint64_t>(
                    msg.at("generation").as_number());

                if (type == "heartbeat") {
                    send_frame(sock, ledger.beat(lease, generation, now_s())
                                         ? simple_msg("ok")
                                         : simple_msg("stale"));
                    continue;
                }
                if (type == "row") {
                    // A streamed row proves the worker is alive (counts as
                    // a beat) and feeds --jsonl streaming, first copy wins.
                    const bool live = ledger.beat(lease, generation, now_s());
                    if (live && hooks.on_scenario) {
                        const scenario_result r =
                            scenario_row_from_json(msg.at("result"));
                        SDRBIST_EXPECTS(r.sc.index < grid_size);
                        const std::lock_guard<std::mutex> lock(results_mu);
                        if (!row_seen[r.sc.index]) {
                            row_seen[r.sc.index] = 1;
                            hooks.on_scenario(r);
                        }
                    }
                    send_frame(sock,
                               live ? simple_msg("ok") : simple_msg("stale"));
                    continue;
                }
                if (type == "complete") {
                    campaign_result r = result_from_json(msg.at("result"));
                    if (!lease_result_ok(lease, r)) {
                        send_frame(sock, error_msg(
                                             "lease result does not match "
                                             "the granted range"));
                        throw fault_injection::transient_fault(
                            "mismatched lease result");
                    }
                    if (ledger.complete(lease, generation)) {
                        {
                            const std::lock_guard<std::mutex> lock(
                                results_mu);
                            lease_results[lease] = std::move(r);
                        }
                        if (ledger.all_complete())
                            finish(); // the accept loop re-checks within
                                      // its timeout and stops

                        send_frame(sock, simple_msg("ok"));
                    } else {
                        send_frame(sock, simple_msg("stale"));
                    }
                    continue;
                }
                send_frame(sock, error_msg("unknown message type"));
                throw fault_injection::transient_fault(
                    "unknown service message: " + type);
            }
        } catch (const std::exception&) {
            // Expected event: the worker died (SIGKILL included), timed
            // out, or sent garbage.  Contain it — re-queue whatever it
            // held and let the remaining fleet finish the grid.
            if (ledger.requeue_owner(owner) > 0)
                dropped.fetch_add(1, std::memory_order_relaxed);
        }
    }
};

coordinator::coordinator(campaign_config grid, service_config svc) {
    SDRBIST_EXPECTS(grid.shard.count == 1);
    SDRBIST_EXPECTS(!grid.lease);
    SDRBIST_EXPECTS(grid.journal_path.empty() && !grid.resume);
    SDRBIST_EXPECTS(svc.lease_size >= 1);
    SDRBIST_EXPECTS(svc.heartbeat_s > 0.0);
    impl_ = std::make_unique<impl>(std::move(grid), svc);
}

coordinator::~coordinator() = default;

std::uint16_t coordinator::port() const { return impl_->listener.port(); }

service_report coordinator::serve(const run_hooks& hooks) {
    impl& im = *impl_;
    std::thread reaper([&im] { im.reap(); });
    std::vector<std::thread> handlers;
    while (!im.done.load(std::memory_order_acquire)) {
        tcp_socket sock = im.listener.accept(/*timeout_s=*/0.2);
        if (!sock.valid())
            continue; // accept timeout or listener closed; re-check done
        handlers.emplace_back(
            [&im, &hooks, s = std::move(sock)]() mutable {
                im.handle(std::move(s), hooks);
            });
    }
    // Drain: handlers exit when their worker disconnects after "done" (or
    // on their bounded recv timeout); the reaper wakes on finish().
    for (std::thread& t : handlers)
        t.join();
    reaper.join();

    service_report report;
    std::vector<campaign_result> pieces;
    pieces.reserve(im.lease_results.size());
    for (auto& r : im.lease_results) {
        SDRBIST_EXPECTS(r.has_value());
        pieces.push_back(std::move(*r));
    }
    report.result = merge_results(pieces);
    report.leases = im.ledger.stats();
    report.workers_seen = im.workers_seen.load(std::memory_order_relaxed);
    report.dropped_connections = im.dropped.load(std::memory_order_relaxed);
    return report;
}

} // namespace sdrbist::campaign::service

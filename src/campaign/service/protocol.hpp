/// \file protocol.hpp
/// \brief Wire layer of the distributed campaign service: blocking TCP
///        sockets plus length-prefixed JSON framing.
///
/// The service speaks the smallest protocol that can lease grid slices to
/// workers: every message is a 4-byte big-endian payload length followed
/// by that many bytes of JSON (built with the same `json_object_writer` /
/// `parse_json` pair the exporters use — no new dependencies).  One
/// persistent connection per worker, strictly request → response, so the
/// coordinator never pushes unsolicited frames and a worker can serialise
/// its heartbeat thread and row streaming behind one mutex.
///
/// Failure taxonomy (PR 7 vocabulary):
///  * A dead peer — EOF, ECONNRESET, recv timeout — raises
///    `fault_injection::transient_fault`.  Worker death is an *expected
///    event*: the coordinator contains it by re-queueing the lease.
///  * A protocol violation — oversized length prefix, unparseable JSON —
///    raises the same transient class at the connection level (the
///    coordinator drops the connection and re-queues), while handshake
///    mismatches (protocol version, campaign identity) are
///    `contract_violation`s: deterministic, never retried.
///
/// Both frame directions carry fault-injection probe sites
/// (`service.send`, `service.recv`); `service.send` also honours
/// `corrupt-bytes` clauses so CI can exercise the containment path
/// without killing processes.
///
/// POSIX only (guarded): non-unix builds get stubs that throw
/// `contract_violation`, keeping the library linkable everywhere.
#pragma once

#include <cstdint>
#include <string>

#include "campaign/export.hpp"

namespace sdrbist::campaign::service {

/// Handshake-checked protocol revision.
inline constexpr int protocol_version = 1;

/// Upper bound on one frame's payload.  A larger length prefix is a
/// protocol violation, not an allocation request.
inline constexpr std::uint32_t max_frame_bytes = 64u * 1024u * 1024u;

/// Move-only owner of a connected socket fd.
class tcp_socket {
public:
    tcp_socket() = default;
    explicit tcp_socket(int fd) : fd_(fd) {}
    ~tcp_socket() { close(); }
    tcp_socket(tcp_socket&& other) noexcept : fd_(other.fd_) {
        other.fd_ = -1;
    }
    tcp_socket& operator=(tcp_socket&& other) noexcept {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    tcp_socket(const tcp_socket&) = delete;
    tcp_socket& operator=(const tcp_socket&) = delete;

    [[nodiscard]] bool valid() const { return fd_ >= 0; }
    [[nodiscard]] int fd() const { return fd_; }

    /// Bound how long any single recv may block (0 = forever).  Framing
    /// surfaces an expired bound as a transient fault.
    void set_recv_timeout(double seconds);
    void close();

private:
    int fd_ = -1;
};

/// Blocking connect to `host:port`.  Throws `transient_fault` when the
/// coordinator is not accepting (yet) — callers retry with backoff.
tcp_socket tcp_connect(const std::string& host, std::uint16_t port);

/// Listening socket.  Binding failures are deterministic configuration
/// errors (`contract_violation`); accept timeouts are not errors.
class tcp_listener {
public:
    /// Bind + listen on `host:port`.  Port 0 binds an ephemeral port —
    /// read the actual one back via `port()`.
    tcp_listener(const std::string& host, std::uint16_t port);
    ~tcp_listener();
    tcp_listener(const tcp_listener&) = delete;
    tcp_listener& operator=(const tcp_listener&) = delete;

    [[nodiscard]] std::uint16_t port() const { return port_; }

    /// Accept one connection, waiting at most `timeout_s` (0 = forever).
    /// Returns an invalid socket on timeout or after close() — the
    /// caller's loop decides whether to keep waiting.
    tcp_socket accept(double timeout_s);

    /// Shut the listener down; a concurrently blocked accept() unblocks.
    void close();

private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

/// Send one frame (length prefix + payload).  Fires the `service.send`
/// probe (corrupt-bytes clauses mangle the payload before framing).
/// Throws `transient_fault` when the peer is gone.
void send_frame(tcp_socket& s, std::string payload);

/// Receive one frame's payload.  Fires the `service.recv` probe.  Throws
/// `transient_fault` on EOF / reset / timeout, `contract_violation` on an
/// oversized length prefix.
std::string recv_frame(tcp_socket& s);

/// recv_frame + parse.  A payload that does not parse means the
/// connection is garbage — surfaced as `transient_fault` so the owner is
/// dropped and its leases re-queued (corruption is contained, not fatal).
json_value recv_message(tcp_socket& s);

} // namespace sdrbist::campaign::service

/// \file lease_ledger.hpp
/// \brief Lease bookkeeping for the campaign-service coordinator.
///
/// The expanded grid is cut into contiguous `lease_range` slices of
/// `lease_size` scenarios (the last one short).  Each lease moves through
/// queued → granted → completed; a granted lease carries a **generation**
/// that increments every time it is (re-)granted, so frames from a worker
/// whose lease lapsed — heartbeats, streamed rows, even a late
/// `complete` — are recognisably stale and rejected.  Re-queueing happens
/// on two signals: the owner's connection died (fast path, a SIGKILLed
/// worker's socket EOFs immediately) or its heartbeats lapsed (slow path,
/// catches wedged-but-connected workers).  First accepted completion
/// wins; grid determinism makes duplicate executions byte-identical, so
/// "wins" is about accounting, not correctness.
///
/// Time is passed in by the caller (seconds on any monotonic scale), so
/// lifecycle unit tests drive lapses synthetically.
///
/// Counter ≡ result: the `service.leases` / `service.requeues` /
/// `service.heartbeats` telemetry counters are bumped at the exact state
/// transitions the `ledger_stats` fields record, so the two can be
/// asserted equal.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "campaign/campaign.hpp"

namespace sdrbist::campaign::service {

/// One granted lease as handed to a worker.
struct lease_grant {
    std::size_t lease = 0;        ///< lease id, in [0, lease_count)
    std::uint64_t generation = 0; ///< increments on every (re-)grant
    lease_range range{};          ///< grid slice the worker grades
};

/// Lifecycle tallies (mirrored 1:1 into the service.* counters).
struct ledger_stats {
    std::size_t leases = 0;     ///< grants handed out, re-grants included
    std::size_t requeues = 0;   ///< lapsed/orphaned grants re-queued
    std::size_t heartbeats = 0; ///< beats accepted on live grants
    std::size_t completed = 0;  ///< leases finished (each exactly once)
};

/// Thread-safe lease state machine.  All methods lock internally.
class lease_ledger {
public:
    /// Partition `grid_size` scenarios into ceil(grid/lease_size) slices.
    lease_ledger(std::size_t grid_size, std::size_t lease_size);

    [[nodiscard]] std::size_t lease_count() const { return ranges_.size(); }
    [[nodiscard]] lease_range range_of(std::size_t lease) const;

    /// Grant the next queued lease to `owner` (any id unique per
    /// connection).  nullopt when nothing is queued — which means either
    /// all done, or every remaining lease is granted elsewhere ("wait").
    std::optional<lease_grant> grant(std::uint64_t owner, double now_s);

    /// Record life on a grant (heartbeat frame or streamed row).  False
    /// when the (lease, generation) pair is stale — re-queued or already
    /// completed — telling the worker its effort no longer counts.
    bool beat(std::size_t lease, std::uint64_t generation, double now_s);

    /// First accepted completion retires the lease; false when stale.
    bool complete(std::size_t lease, std::uint64_t generation);

    /// Re-queue granted leases whose last beat is older than `timeout_s`.
    /// Returns how many lapsed.
    std::size_t requeue_lapsed(double now_s, double timeout_s);

    /// Re-queue every lease granted to `owner` (its connection died).
    std::size_t requeue_owner(std::uint64_t owner);

    [[nodiscard]] bool all_complete() const;
    [[nodiscard]] ledger_stats stats() const;

private:
    enum class state { queued, granted, completed };
    struct entry {
        state st = state::queued;
        std::uint64_t generation = 0;
        std::uint64_t owner = 0;
        double last_beat_s = 0.0;
    };

    [[nodiscard]] bool current_locked(std::size_t lease,
                                      std::uint64_t generation) const;

    mutable std::mutex mu_;
    std::vector<lease_range> ranges_;
    std::vector<entry> entries_;
    std::size_t completed_ = 0;
    ledger_stats stats_;
};

} // namespace sdrbist::campaign::service

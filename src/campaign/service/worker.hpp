/// \file worker.hpp
/// \brief Campaign-service worker loop: lease → grade → stream → repeat.
///
/// `campaign_runner --worker HOST:PORT` wraps `run_worker()`.  The worker
/// connects (retrying while the coordinator comes up), handshakes with
/// its `campaign_identity()` digest, then loops: request a lease, grade
/// the slice with a plain `campaign_runner` (the `lease` filter on
/// `campaign_config`), stream every finished row back through the
/// `scenario_row_json` codec, and post the per-lease `campaign_result`
/// as `complete`.  While a lease computes, a sidecar thread heartbeats
/// at the cadence the `welcome` frame dictates (the coordinator's
/// `heartbeat_s` — its re-queue timeout derives from it, so the two can
/// never disagree); both the beats and the row frames share one
/// connection behind a mutex (the protocol is strictly request →
/// response, so interleaving is safe).
///
/// Failure model: losing the coordinator mid-anything raises
/// `transient_fault` out of `run_worker` — the process exits and the
/// operator (or supervisor) restarts it.  A `stale` reply means the
/// lease lapsed under us (we were presumed dead); the worker finishes
/// the compute (it cannot be cancelled mid-scenario), shrugs off the
/// rejected completion and asks for fresh work.  Grid determinism makes
/// the duplicate execution harmless.
///
/// When the config names a journal, `resume` is forced on: the journal
/// spans every lease this worker executes (the identity excludes the
/// lease range), so a restarted worker re-grades only what its journal
/// misses.  Cold start — resume against a journal that does not exist
/// yet — just creates it.
#pragma once

#include <cstddef>

#include "campaign/campaign.hpp"
#include "campaign/service/coordinator.hpp" // service_config

namespace sdrbist::campaign::service {

/// Tallies from one worker process's service session.
struct worker_report {
    std::size_t leases = 0;     ///< leases completed and accepted
    std::size_t stale = 0;      ///< completions rejected as lapsed
    std::size_t rows = 0;       ///< scenario rows streamed (accepted or not)
    std::size_t heartbeats = 0; ///< beats sent by the sidecar thread
};

/// Run the worker loop until the coordinator says `done`.  Throws
/// `transient_fault` when the coordinator cannot be reached (after the
/// connect-retry window) or disappears mid-run, `contract_violation` on
/// handshake mismatches.  `grid` must carry the same grid flags as the
/// coordinator's; its `shard`/`lease` must be unset (leases arrive over
/// the wire).
worker_report run_worker(campaign_config grid, const service_config& svc);

} // namespace sdrbist::campaign::service

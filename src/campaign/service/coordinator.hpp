/// \file coordinator.hpp
/// \brief Campaign-service coordinator: owns the lease ledger, serves
///        workers over TCP, merges completed leases bit-identically.
///
/// `campaign_runner --serve HOST:PORT` wraps this class.  The coordinator
/// never grades a scenario itself: it partitions the expanded grid into
/// `lease_range` slices (see lease_ledger.hpp), hands them to workers on
/// request, and treats worker death as an expected event — a dead
/// connection or a lapsed heartbeat re-queues the lease for the next
/// requester.  Each accepted `complete` frame carries the worker's
/// per-lease `campaign_result` (the shard-file codec), and the final
/// answer is `merge_results()` over the lease results — the same
/// exact-coverage merge the CLI `--merge` path uses, so exports are
/// byte-identical (timing suppressed) to a single-process run of the
/// same grid.
///
/// Grid submission is by construction: coordinator and workers are
/// launched with the *same grid flags*, and the hello handshake compares
/// `campaign_identity()` digests — the wire never carries the engine
/// config, only lease ranges and result rows.
///
/// Threading: one accept loop (inside `serve()`), one detached-joinable
/// handler thread per connection, one reaper thread re-queueing lapsed
/// leases.  All lease state lives in the internally-locked ledger.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "campaign/campaign.hpp"
#include "campaign/service/lease_ledger.hpp"

namespace sdrbist::campaign::service {

/// Knobs shared by `--serve` and `--worker`.
struct service_config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;    ///< 0 = bind an ephemeral port (see port())
    std::size_t lease_size = 4; ///< scenarios per lease
    double heartbeat_s = 5.0;  ///< worker beat period while computing
    /// Grants with no beat for this long are re-queued; 0 derives the
    /// default 3 × heartbeat_s (one lost beat is jitter, three is death).
    double lease_timeout_s = 0.0;

    [[nodiscard]] double timeout() const {
        return lease_timeout_s > 0.0 ? lease_timeout_s : 3.0 * heartbeat_s;
    }
};

/// What `serve()` hands back, beyond the merged result.
struct service_report {
    campaign_result result;    ///< merge_results() over completed leases
    ledger_stats leases;       ///< counter≡result-exact lifecycle tallies
    std::size_t workers_seen = 0; ///< successful hello handshakes
    /// Connections that died while holding leases (every one re-queued).
    std::size_t dropped_connections = 0;
};

class coordinator {
public:
    /// Binds the listener immediately (so `port()` is valid before
    /// `serve()`); throws contract_violation when the address is taken.
    /// The grid config must be unsharded and journal-free — the
    /// coordinator delegates all grading.
    coordinator(campaign_config grid, service_config svc);
    ~coordinator();
    coordinator(const coordinator&) = delete;
    coordinator& operator=(const coordinator&) = delete;

    [[nodiscard]] std::uint16_t port() const;

    /// Serve workers until every lease completes, then merge and return.
    /// `hooks.on_scenario` fires once per grid row as its first copy
    /// streams in (duplicates from re-run leases are suppressed), so
    /// `--jsonl` streaming works exactly like a local run.
    service_report serve(const run_hooks& hooks = {});

private:
    struct impl;
    std::unique_ptr<impl> impl_;
};

} // namespace sdrbist::campaign::service

#include "campaign/service/lease_ledger.hpp"

#include <algorithm>

#include "core/contracts.hpp"
#include "core/telemetry.hpp"

namespace sdrbist::campaign::service {

lease_ledger::lease_ledger(std::size_t grid_size, std::size_t lease_size) {
    SDRBIST_EXPECTS(grid_size >= 1);
    SDRBIST_EXPECTS(lease_size >= 1);
    const std::size_t count = (grid_size + lease_size - 1) / lease_size;
    ranges_.reserve(count);
    for (std::size_t k = 0; k < count; ++k)
        ranges_.push_back({k * lease_size,
                           std::min(grid_size, (k + 1) * lease_size)});
    entries_.resize(count);
}

lease_range lease_ledger::range_of(std::size_t lease) const {
    SDRBIST_EXPECTS(lease < ranges_.size());
    return ranges_[lease];
}

std::optional<lease_grant> lease_ledger::grant(std::uint64_t owner,
                                               double now_s) {
    const std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t k = 0; k < entries_.size(); ++k) {
        entry& e = entries_[k];
        if (e.st != state::queued)
            continue;
        e.st = state::granted;
        ++e.generation;
        e.owner = owner;
        e.last_beat_s = now_s;
        ++stats_.leases;
        telemetry::count(telemetry::counter::service_leases);
        return lease_grant{k, e.generation, ranges_[k]};
    }
    return std::nullopt;
}

bool lease_ledger::current_locked(std::size_t lease,
                                  std::uint64_t generation) const {
    return lease < entries_.size() &&
           entries_[lease].st == state::granted &&
           entries_[lease].generation == generation;
}

bool lease_ledger::beat(std::size_t lease, std::uint64_t generation,
                        double now_s) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!current_locked(lease, generation))
        return false;
    entries_[lease].last_beat_s = now_s;
    ++stats_.heartbeats;
    telemetry::count(telemetry::counter::service_heartbeats);
    return true;
}

bool lease_ledger::complete(std::size_t lease, std::uint64_t generation) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!current_locked(lease, generation))
        return false;
    entries_[lease].st = state::completed;
    ++completed_;
    ++stats_.completed;
    return true;
}

std::size_t lease_ledger::requeue_lapsed(double now_s, double timeout_s) {
    const std::lock_guard<std::mutex> lock(mu_);
    std::size_t lapsed = 0;
    for (entry& e : entries_) {
        if (e.st != state::granted || now_s - e.last_beat_s <= timeout_s)
            continue;
        e.st = state::queued;
        ++lapsed;
        ++stats_.requeues;
        telemetry::count(telemetry::counter::service_requeues);
    }
    return lapsed;
}

std::size_t lease_ledger::requeue_owner(std::uint64_t owner) {
    const std::lock_guard<std::mutex> lock(mu_);
    std::size_t orphaned = 0;
    for (entry& e : entries_) {
        if (e.st != state::granted || e.owner != owner)
            continue;
        e.st = state::queued;
        ++orphaned;
        ++stats_.requeues;
        telemetry::count(telemetry::counter::service_requeues);
    }
    return orphaned;
}

bool lease_ledger::all_complete() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return completed_ == entries_.size();
}

ledger_stats lease_ledger::stats() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

} // namespace sdrbist::campaign::service

#include "campaign/service/protocol.hpp"

#include <cerrno>
#include <cstring>

#include "core/contracts.hpp"
#include "core/fault_injection.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#define SDRBIST_HAVE_SOCKETS 1
#endif

namespace sdrbist::campaign::service {

#if defined(SDRBIST_HAVE_SOCKETS)

namespace {

using fault_injection::transient_fault;

[[noreturn]] void throw_errno(const std::string& what) {
    throw transient_fault(what + ": " + std::strerror(errno));
}

void set_timeout(int fd, int which, double seconds) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, which, &tv, sizeof(tv));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    SDRBIST_EXPECTS(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1);
    return addr;
}

/// write(2) until done.  EPIPE/ECONNRESET → the peer died: transient.
void send_all(int fd, const char* data, std::size_t n) {
    while (n > 0) {
#if defined(MSG_NOSIGNAL)
        const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
#else
        const ssize_t w = ::send(fd, data, n, 0);
#endif
        if (w < 0) {
            if (errno == EINTR)
                continue;
            throw_errno("service send failed");
        }
        data += w;
        n -= static_cast<std::size_t>(w);
    }
}

/// read(2) until `n` bytes arrived.  EOF mid-message and recv timeouts
/// are both "the peer stopped talking" — transient.
void recv_all(int fd, char* data, std::size_t n) {
    while (n > 0) {
        const ssize_t r = ::recv(fd, data, n, 0);
        if (r == 0)
            throw transient_fault("service peer closed the connection");
        if (r < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                throw transient_fault("service recv timed out");
            throw_errno("service recv failed");
        }
        data += r;
        n -= static_cast<std::size_t>(r);
    }
}

} // namespace

void tcp_socket::set_recv_timeout(double seconds) {
    SDRBIST_EXPECTS(valid());
    set_timeout(fd_, SO_RCVTIMEO, seconds);
}

void tcp_socket::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

tcp_socket tcp_connect(const std::string& host, std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw_errno("cannot create socket");
    tcp_socket sock(fd);
#if defined(SO_NOSIGPIPE)
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#endif
    const sockaddr_in addr = make_addr(host, port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0)
        throw_errno("cannot connect to " + host + ":" + std::to_string(port));
    return sock;
}

tcp_listener::tcp_listener(const std::string& host, std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    SDRBIST_EXPECTS(fd_ >= 0);
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    const sockaddr_in addr = make_addr(host, port);
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(fd_, 16) != 0) {
        const std::string what = std::strerror(errno);
        ::close(fd_);
        fd_ = -1;
        throw contract_violation("cannot listen on " + host + ":" +
                                 std::to_string(port) + ": " + what);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    SDRBIST_EXPECTS(::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound),
                                  &len) == 0);
    port_ = ntohs(bound.sin_port);
}

tcp_listener::~tcp_listener() { close(); }

tcp_socket tcp_listener::accept(double timeout_s) {
    if (fd_ < 0)
        return tcp_socket{};
    if (timeout_s > 0.0)
        set_timeout(fd_, SO_RCVTIMEO, timeout_s);
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0)
        return tcp_socket{}; // timeout, EINTR or closed: caller decides
    tcp_socket sock(client);
#if defined(SO_NOSIGPIPE)
    const int one = 1;
    ::setsockopt(client, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#endif
    return sock;
}

void tcp_listener::close() {
    if (fd_ >= 0) {
        ::shutdown(fd_, SHUT_RDWR);
        ::close(fd_);
        fd_ = -1;
    }
}

void send_frame(tcp_socket& s, std::string payload) {
    SDRBIST_EXPECTS(s.valid());
    fault_injection::fire(fault_injection::site::service_send);
    fault_injection::corrupt(fault_injection::site::service_send, payload);
    SDRBIST_EXPECTS(payload.size() <= max_frame_bytes);
    const auto n = static_cast<std::uint32_t>(payload.size());
    const char header[4] = {static_cast<char>((n >> 24) & 0xFF),
                            static_cast<char>((n >> 16) & 0xFF),
                            static_cast<char>((n >> 8) & 0xFF),
                            static_cast<char>(n & 0xFF)};
    send_all(s.fd(), header, 4);
    send_all(s.fd(), payload.data(), payload.size());
}

std::string recv_frame(tcp_socket& s) {
    SDRBIST_EXPECTS(s.valid());
    fault_injection::fire(fault_injection::site::service_recv);
    unsigned char header[4];
    recv_all(s.fd(), reinterpret_cast<char*>(header), 4);
    const std::uint32_t n = (std::uint32_t{header[0]} << 24) |
                            (std::uint32_t{header[1]} << 16) |
                            (std::uint32_t{header[2]} << 8) |
                            std::uint32_t{header[3]};
    if (n > max_frame_bytes)
        throw contract_violation("service frame length " + std::to_string(n) +
                                 " exceeds the protocol bound");
    std::string payload(n, '\0');
    if (n > 0)
        recv_all(s.fd(), payload.data(), n);
    return payload;
}

#else // !SDRBIST_HAVE_SOCKETS — keep the library linkable without POSIX

namespace {
[[noreturn]] void unsupported() {
    throw contract_violation(
        "the campaign service requires POSIX sockets on this platform");
}
} // namespace

void tcp_socket::set_recv_timeout(double) { unsupported(); }
void tcp_socket::close() { fd_ = -1; }
tcp_socket tcp_connect(const std::string&, std::uint16_t) { unsupported(); }
tcp_listener::tcp_listener(const std::string&, std::uint16_t) {
    unsupported();
}
tcp_listener::~tcp_listener() = default;
tcp_socket tcp_listener::accept(double) { unsupported(); }
void tcp_listener::close() {}
void send_frame(tcp_socket&, std::string) { unsupported(); }
std::string recv_frame(tcp_socket&) { unsupported(); }

#endif

json_value recv_message(tcp_socket& s) {
    const std::string payload = recv_frame(s);
    try {
        return parse_json(payload);
    } catch (const std::exception& e) {
        // A garbled frame means the connection is untrustworthy from here
        // on; transient so the owner is dropped and its leases re-queued.
        throw fault_injection::transient_fault(
            std::string("malformed service frame: ") + e.what());
    }
}

} // namespace sdrbist::campaign::service

#include "campaign/service/worker.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "campaign/journal.hpp"
#include "campaign/service/protocol.hpp"
#include "campaign/shard_io.hpp"
#include "core/contracts.hpp"
#include "core/fault_injection.hpp"

namespace sdrbist::campaign::service {

namespace {

using fault_injection::transient_fault;

/// How long a starting worker keeps retrying the coordinator's address —
/// covers the "worker launched a beat before --serve bound" race without
/// masking a truly absent coordinator.
constexpr double connect_retry_window_s = 15.0;

std::string simple_msg(const char* type) {
    json_object_writer o;
    o.string_field("type", type);
    return o.str();
}

std::string lease_msg(const char* type, std::size_t lease,
                      std::uint64_t generation) {
    json_object_writer o;
    o.string_field("type", type);
    o.size_field("lease", lease);
    o.size_field("generation", static_cast<std::size_t>(generation));
    return o.str();
}

tcp_socket connect_with_retry(const service_config& svc) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(
                              connect_retry_window_s);
    for (;;) {
        try {
            return tcp_connect(svc.host, svc.port);
        } catch (const transient_fault&) {
            if (std::chrono::steady_clock::now() >= deadline)
                throw;
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
    }
}

} // namespace

worker_report run_worker(campaign_config grid, const service_config& svc) {
    SDRBIST_EXPECTS(grid.shard.count == 1);
    SDRBIST_EXPECTS(!grid.lease);
    // One journal spans every lease this worker executes; always resume
    // (cold start just creates the file — see campaign/journal.cpp).
    if (!grid.journal_path.empty())
        grid.resume = true;

    // Local copy: the hello reply overrides the beat cadence with the
    // coordinator's, whose reaper timeout is derived from it — a worker
    // launched with a mismatched (or default) --heartbeat-s must not get
    // reaped as silent while healthily computing.
    service_config cadence = svc;

    tcp_socket sock = connect_with_retry(svc);
    sock.set_recv_timeout(std::max(2.0 * svc.timeout(), 5.0));

    // One connection, strict request → response: the main loop, the
    // heartbeat sidecar and the row-streaming hook (called from scheduler
    // worker threads) all serialise whole exchanges behind this mutex.
    std::mutex wire_mu;
    auto transact = [&](const std::string& payload) {
        const std::lock_guard<std::mutex> lock(wire_mu);
        send_frame(sock, payload);
        return recv_message(sock);
    };

    {
        json_object_writer o;
        o.string_field("type", "hello");
        o.size_field("protocol_version",
                     static_cast<std::size_t>(protocol_version));
        o.string_field("identity", campaign_identity(grid));
        const json_value welcome = transact(o.str());
        if (welcome.at("type").as_string() == "error")
            throw contract_violation("coordinator rejected this worker: " +
                                     welcome.at("what").as_string());
        SDRBIST_EXPECTS(welcome.at("type").as_string() == "welcome");
        cadence.heartbeat_s = welcome.at("heartbeat_s").as_number();
        SDRBIST_EXPECTS(cadence.heartbeat_s > 0.0);
        sock.set_recv_timeout(std::max(2.0 * cadence.timeout(), 5.0));
    }

    worker_report report;
    std::atomic<std::size_t> rows{0};
    std::atomic<std::size_t> beats{0};

    for (;;) {
        const json_value reply = transact(simple_msg("request"));
        const std::string type = reply.at("type").as_string();
        if (type == "done")
            break;
        if (type == "wait") {
            std::this_thread::sleep_for(std::chrono::duration<double>(
                std::clamp(cadence.heartbeat_s / 2.0, 0.05, 0.5)));
            continue;
        }
        if (type == "error")
            throw contract_violation("coordinator error: " +
                                     reply.at("what").as_string());
        SDRBIST_EXPECTS(type == "lease");
        const auto lease =
            static_cast<std::size_t>(reply.at("lease").as_number());
        const auto generation =
            static_cast<std::uint64_t>(reply.at("generation").as_number());

        campaign_config cfg = grid;
        cfg.lease = lease_range{
            static_cast<std::size_t>(reply.at("begin").as_number()),
            static_cast<std::size_t>(reply.at("end").as_number())};

        // The engine cannot be cancelled mid-scenario, so a connection
        // that dies during the compute is only *recorded* here; the lease
        // finishes locally and the failure is rethrown afterwards.
        std::atomic<bool> conn_dead{false};
        std::mutex beat_mu;
        std::condition_variable beat_cv;
        bool computing = true;
        std::thread beater([&] {
            std::unique_lock<std::mutex> lock(beat_mu);
            for (;;) {
                beat_cv.wait_for(
                    lock,
                    std::chrono::duration<double>(cadence.heartbeat_s),
                    [&] { return !computing; });
                if (!computing)
                    return;
                lock.unlock();
                try {
                    transact(lease_msg("heartbeat", lease, generation));
                    beats.fetch_add(1, std::memory_order_relaxed);
                } catch (const std::exception&) {
                    conn_dead.store(true, std::memory_order_relaxed);
                    return;
                }
                lock.lock();
            }
        });

        run_hooks hooks;
        hooks.on_scenario = [&](const scenario_result& r) {
            if (conn_dead.load(std::memory_order_relaxed))
                return;
            json_object_writer o;
            o.string_field("type", "row");
            o.size_field("lease", lease);
            o.size_field("generation", static_cast<std::size_t>(generation));
            o.field("result", scenario_row_json(r));
            try {
                transact(o.str());
                rows.fetch_add(1, std::memory_order_relaxed);
            } catch (const std::exception&) {
                // Never let a wire failure masquerade as a scenario
                // failure inside the runner; surface it after the lease.
                conn_dead.store(true, std::memory_order_relaxed);
            }
        };

        campaign_result result;
        try {
            result = campaign_runner(cfg).run(hooks);
        } catch (...) {
            {
                const std::lock_guard<std::mutex> lock(beat_mu);
                computing = false;
            }
            beat_cv.notify_all();
            beater.join();
            throw;
        }
        {
            const std::lock_guard<std::mutex> lock(beat_mu);
            computing = false;
        }
        beat_cv.notify_all();
        beater.join();
        if (conn_dead.load(std::memory_order_relaxed))
            throw transient_fault("lost the coordinator mid-lease");

        json_object_writer o;
        o.string_field("type", "complete");
        o.size_field("lease", lease);
        o.size_field("generation", static_cast<std::size_t>(generation));
        o.field("result", result_to_json(result));
        const json_value resp = transact(o.str());
        if (resp.at("type").as_string() == "ok")
            ++report.leases;
        else
            ++report.stale; // lapsed under us; the re-run is deterministic
    }

    report.rows = rows.load(std::memory_order_relaxed);
    report.heartbeats = beats.load(std::memory_order_relaxed);
    return report;
}

} // namespace sdrbist::campaign::service

/// \file fig6_lms_convergence.cpp
/// \brief Regenerates paper Fig. 6: evolution of the cost function over LMS
///        iterations for starting points D̂0 in {50, 100, 350, 400} ps.
///
/// Expected shape: every trace decays to the jitter/quantisation floor and
/// the estimate lands at D = 180 ps in fewer than 20 iterations.
#include <iostream>

#include "bench_util.hpp"
#include "calib/lms.hpp"
#include "core/table.hpp"

int main() {
    using namespace sdrbist;

    // One paper-configuration capture, shared by all four runs (as in the
    // paper: same data, several starting points).
    const auto run = benchutil::run_paper_engine();
    const double d_true = run.art.capture.fast.true_delay_s;

    std::cout << "Fig. 6 — LMS cost evolution for several D-hat_0 "
                 "(true D = " << d_true / ps << " ps, mu0 = 1e-12)\n\n";

    const std::vector<double> starts{50.0 * ps, 100.0 * ps, 350.0 * ps,
                                     400.0 * ps};
    const calib::lms_skew_estimator estimator(run.config.lms);

    std::vector<calib::skew_estimate> results;
    std::size_t max_len = 0;
    for (double d0 : starts) {
        results.push_back(
            estimator.estimate(run.art.capture, d0, run.art.probe_times));
        max_len = std::max(max_len, results.back().trace.size());
    }

    text_table table({"iter", "cost (D0=50ps)", "cost (D0=100ps)",
                      "cost (D0=350ps)", "cost (D0=400ps)"});
    for (std::size_t i = 0; i < max_len; ++i) {
        std::vector<std::string> row{std::to_string(i)};
        for (const auto& r : results)
            row.push_back(i < r.trace.size()
                              ? text_table::sci(r.trace[i].cost, 3)
                              : std::string("-"));
        table.add_row(std::move(row));
    }
    table.print(std::cout);

    std::cout << "\nfinal estimates:\n";
    text_table fin({"D0 [ps]", "D-hat [ps]", "|D-hat - D| [ps]", "iterations",
                    "converged"});
    for (std::size_t i = 0; i < starts.size(); ++i) {
        fin.add_row({text_table::num(starts[i] / ps, 0),
                     text_table::num(results[i].d_hat / ps, 3),
                     text_table::num(std::abs(results[i].d_hat - d_true) / ps, 3),
                     std::to_string(results[i].iterations),
                     results[i].converged ? "yes" : "no"});
    }
    fin.print(std::cout);
    std::cout << "\npaper claim: converges every time in < 20 iterations\n";
    return 0;
}

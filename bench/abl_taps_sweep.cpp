/// \file abl_taps_sweep.cpp
/// \brief Ablation: reconstruction-filter length (the paper requires
///        "nw > 40" and uses 61 taps).  Sweeps the tap count and reports the
///        noiseless reconstruction error plus the error under the paper's
///        jitter/quantisation, separating truncation error from the noise
///        floor.
///
/// Expected shape: noiseless error falls steeply with taps (window-limited),
/// then plateaus; with 3 ps jitter + 10 bits the curve bottoms out at the
/// noise floor near the paper's 61 taps — more taps buy nothing.
#include <iostream>

#include "core/random.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "core/units.hpp"
#include "rf/passband.hpp"
#include "adc/tiadc.hpp"
#include "sampling/pnbs.hpp"

namespace {

using namespace sdrbist;

double recon_error(const rf::passband_signal& sig,
                   const adc::nonuniform_capture& cap,
                   const sampling::band_spec& band, double scale,
                   std::size_t taps) {
    const sampling::pnbs_reconstructor recon(cap.even, cap.odd, cap.period_s,
                                             cap.t_start, band,
                                             cap.true_delay_s, {taps, 8.0});
    rng probe(0xAB1);
    std::vector<double> ref, est;
    for (int i = 0; i < 400; ++i) {
        const double t = probe.uniform(recon.valid_begin(), recon.valid_end());
        ref.push_back(scale * sig.value(t));
        est.push_back(recon.value(t));
    }
    return relative_rms_error(ref, est);
}

} // namespace

int main() {
    using namespace sdrbist;
    const auto band = sampling::band_around(1.0 * GHz, 90.0 * MHz);

    rng gen(0x7A95);
    std::vector<rf::tone> tones;
    for (int i = 0; i < 6; ++i)
        tones.push_back({gen.uniform(band.f_lo + 8.0 * MHz,
                                     band.f_hi - 8.0 * MHz),
                         gen.uniform(0.1, 0.3), gen.uniform(0.0, two_pi)});
    const std::size_t n = 1400;
    const rf::multitone_signal sig(std::move(tones),
                                   static_cast<double>(n) / (90.0 * MHz) +
                                       1.0 * us);

    auto capture_with = [&](double jitter, int bits) {
        adc::tiadc_config tc;
        tc.channel_rate_hz = 90.0 * MHz;
        tc.quant.bits = bits;
        tc.quant.full_scale = 1.5;
        tc.jitter_rms_s = jitter;
        tc.delay_element.step_s = 1.0 * ps;
        adc::bp_tiadc sampler(tc);
        sampler.program_delay(180.0 * ps);
        return sampler.capture(sig, 0.2 * us, n, 0);
    };

    const auto clean = capture_with(0.0, 16);
    const auto noisy = capture_with(3.0 * ps, 10);

    std::cout << "Ablation — reconstruction filter taps (paper: 61 taps, "
                 "'nw > 40')\n\n";
    text_table table({"taps", "rel. error, ideal ADC [%]",
                      "rel. error, 3ps+10bit [%]"});
    for (std::size_t taps : {11u, 21u, 31u, 41u, 61u, 81u, 121u, 161u}) {
        table.add_row({std::to_string(taps),
                       text_table::num(
                           100.0 * recon_error(sig, clean, band, 1.0, taps), 4),
                       text_table::num(
                           100.0 * recon_error(sig, noisy, band, 1.0, taps), 4)});
    }
    table.print(std::cout);
    std::cout << "\nreading: truncation dominates below ~41 taps; at the "
                 "paper's 61 taps the jittered error is already noise-floor "
                 "limited\n";
    return 0;
}

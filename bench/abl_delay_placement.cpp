/// \file abl_delay_placement.cpp
/// \brief Ablation: placement of the DCDE delay D (paper §II-B1: optimal
///        |D| = 1/(4·fc); eq. (3): reconstruction unstable at D = nT/k,
///        nT/k⁺).  Sweeps D across ]0, m[ including points close to the
///        forbidden values.
///
/// Expected shape: reconstruction error is flat and low in a wide middle
/// region (minimum kernel magnitude near 250 ps = 1/(4·fc)), and blows up
/// as D approaches the forbidden 483 ps (and the origin), where the kernel
/// coefficients diverge.
#include <cmath>
#include <iostream>

#include "core/random.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "core/units.hpp"
#include "adc/tiadc.hpp"
#include "rf/passband.hpp"
#include "sampling/pnbs.hpp"

int main() {
    using namespace sdrbist;
    const auto band = sampling::band_around(1.0 * GHz, 90.0 * MHz);
    const double t_period = 1.0 / band.bandwidth();

    rng gen(0xD31A);
    std::vector<rf::tone> tones;
    for (int i = 0; i < 6; ++i)
        tones.push_back({gen.uniform(band.f_lo + 8.0 * MHz,
                                     band.f_hi - 8.0 * MHz),
                         gen.uniform(0.1, 0.3), gen.uniform(0.0, two_pi)});
    const std::size_t n = 1200;
    const rf::multitone_signal sig(std::move(tones),
                                   static_cast<double>(n) * t_period + 1.0 * us);

    std::cout << "Ablation — DCDE delay placement (optimal 1/(4fc) = "
              << sampling::kohlenberg_kernel::optimal_delay(band) / ps
              << " ps; forbidden near "
              << t_period / 23.0 / ps << " and " << t_period / 22.0 / ps
              << " ps)\n\n";

    text_table table({"D [ps]", "max |s(t)| near origin", "recon error [%]",
                      "note"});
    for (double d_ps : {20.0, 60.0, 120.0, 180.0, 250.0, 330.0, 420.0, 460.0,
                        478.0, 482.0}) {
        const double d = d_ps * ps;
        if (!sampling::kohlenberg_kernel::delay_is_stable(band, d)) {
            table.add_row({text_table::num(d_ps, 0), "-", "-", "FORBIDDEN"});
            continue;
        }
        // Kernel magnitude: scan |s| over one period around the origin.
        const sampling::kohlenberg_kernel kern(band, d);
        double smax = 0.0;
        for (double t = -t_period; t <= t_period; t += t_period / 500.0)
            smax = std::max(smax, std::abs(kern.s(t)));

        // Ideal capture and reconstruction at the true delay.
        adc::tiadc_config tc;
        tc.channel_rate_hz = band.bandwidth();
        tc.quant.bits = 10;
        tc.quant.full_scale = 1.5;
        tc.jitter_rms_s = 3.0 * ps;
        tc.delay_element.step_s = 0.1 * ps;
        tc.delay_element.code_max = 20000;
        adc::bp_tiadc sampler(tc);
        sampler.program_delay(d);
        const auto cap = sampler.capture(sig, 0.2 * us, n, 0);

        const sampling::pnbs_reconstructor recon(
            cap.even, cap.odd, cap.period_s, cap.t_start, band,
            cap.true_delay_s, {61, 8.0});
        rng probe(0xF00D);
        std::vector<double> ref, est;
        for (int i = 0; i < 300; ++i) {
            const double t =
                probe.uniform(recon.valid_begin(), recon.valid_end());
            ref.push_back(sig.value(t));
            est.push_back(recon.value(t));
        }
        const double err = relative_rms_error(ref, est);

        std::string note;
        if (std::abs(d_ps - 250.0) < 1.0)
            note = "optimal 1/(4fc)";
        else if (d_ps > 460.0)
            note = "near forbidden";
        table.add_row({text_table::num(d_ps, 0), text_table::num(smax, 2),
                       text_table::num(100.0 * err, 2), note});
    }
    table.print(std::cout);
    std::cout << "\nreading: kernel magnitude (and with it the error) "
                 "diverges towards the eq. (3) forbidden delays; the flat "
                 "region around 1/(4fc) confirms the optimal placement\n";
    return 0;
}

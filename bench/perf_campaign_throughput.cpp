/// \file perf_campaign_throughput.cpp
/// \brief Campaign throughput scaling: scenarios/second at 1, 4 and
///        hardware-concurrency worker threads on a 32-scenario pooled
///        grid, plus warm-vs-cold result-cache and stage-artefact-store
///        throughput on repeated grids.
///
/// Every configuration runs the identical grid (same master seed), so this
/// also smoke-checks the determinism contract while measuring scaling: all
/// thread counts must export byte-identical timing-free artefacts and
/// identical stage-reuse accounting.  On hosts with >= 4 hardware threads
/// the dag schedule must reach >= 3x at 4 threads.  Machine-readable
/// results are printed as `BENCH_JSON {...}` lines (see bench_util.hpp).
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <future>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "campaign/campaign.hpp"
#include "campaign/export.hpp"
#include "campaign/service/coordinator.hpp"
#include "campaign/service/worker.hpp"
#include "core/fault_injection.hpp"
#include "core/table.hpp"
#include "core/telemetry.hpp"
#include "core/task_scheduler.hpp"

namespace {

/// Share of the workers' wall time the telemetry spans account for: the
/// stage, pool, cache and idle spans together should cover nearly all of
/// `threads x wall` (the rest is per-scenario glue).
double span_coverage(const sdrbist::campaign::campaign_result& result) {
    using sdrbist::telemetry::category;
    const auto& s = result.telemetry_summary;
    const double covered_ns =
        static_cast<double>(s.of(category::stage_stimulus).total_ns +
                            s.of(category::stage_tx_capture).total_ns +
                            s.of(category::stage_calibration).total_ns +
                            s.of(category::stage_reconstruction).total_ns +
                            s.of(category::stage_grading).total_ns +
                            s.of(category::pool).total_ns +
                            s.of(category::cache).total_ns +
                            s.of(category::idle).total_ns);
    const double budget_ns = static_cast<double>(result.threads_used) *
                             result.wall_s * 1e9;
    return budget_ns > 0.0 ? covered_ns / budget_ns : 0.0;
}

} // namespace

int main() {
    using namespace sdrbist;

    // Counter/aggregate collection on for the whole bench (it is what the
    // per-stage breakdowns below read); trace buffering only in the
    // dedicated overhead section.
    telemetry::enable(/*capture_trace=*/false);

    // A 32-scenario grid with a pooled stage prefix: `reseed_policy::probes`
    // keeps the device fixed across probe-draw trials, so scenarios share
    // their stimulus and Tx-capture stages.  That is exactly the shape that
    // pinned the retired fixed-queue pool near 1x — co-consumers parked on
    // the owner's shared_future — and the shape the dag schedule exists
    // for: pooled owners run as graph nodes, consumers adopt the finished
    // snapshot without ever blocking.
    campaign::campaign_config cfg;
    cfg.base.tiadc.quant.full_scale = 2.0;
    cfg.base.min_output_rms = 1.2;
    cfg.presets = {waveform::find_preset("paper-qpsk-10M"),
                   waveform::find_preset("tactical-bpsk-2M")};
    cfg.faults = {bist::fault_kind::none, bist::fault_kind::pa_gain_drop};
    cfg.trials = 8;
    cfg.reseed = campaign::reseed_policy::probes;
    cfg.seed = 0xCA59A16Dull;

    const std::size_t hw = task_scheduler::default_thread_count();
    std::vector<std::size_t> thread_counts = {1, 4, hw};
    std::sort(thread_counts.begin(), thread_counts.end());
    thread_counts.erase(
        std::unique(thread_counts.begin(), thread_counts.end()),
        thread_counts.end());

    std::cout << "campaign throughput: "
              << cfg.presets.size() * cfg.faults.size() * cfg.trials
              << " scenarios per run, hardware concurrency = " << hw
              << "\n\n";

    text_table table({"threads", "wall [s]", "scenarios/s", "speedup",
                      "efficiency [%]", "coverage"});
    std::string baseline_json;
    double dag_speedup_at_4t = 0.0;
    double baseline_rate = 0.0;
    std::pair<std::size_t, std::size_t> baseline_reuse;
    for (std::size_t ti = 0; ti < thread_counts.size(); ++ti) {
        const std::size_t threads = thread_counts[ti];
        cfg.threads = threads;
        const auto before = telemetry::counters();
        const auto result = campaign::campaign_runner(cfg).run();
        const auto after = telemetry::counters();
        const auto delta = [&](telemetry::counter c) {
            return after[static_cast<std::size_t>(c)] -
                   before[static_cast<std::size_t>(c)];
        };

        // Determinism cross-check: every thread count must produce the
        // byte-identical timing-free export.
        campaign::export_options opt;
        opt.include_timing = false;
        const auto artefact = campaign::to_json(result, opt);
        if (baseline_json.empty())
            baseline_json = artefact;
        else if (artefact != baseline_json) {
            std::cerr << "DETERMINISM VIOLATION: results differ at "
                      << threads << " threads\n";
            return 1;
        }

        // Counter≡result exactness: the credited-consumer rule books the
        // same stage-pool accounting at every thread count.
        const auto reuse = std::make_pair(result.stage_reuse_hits,
                                          result.stage_reuse_computes);
        if (ti == 0)
            baseline_reuse = reuse;
        else if (reuse != baseline_reuse) {
            std::cerr << "SCHEDULER VIOLATION: reuse accounting "
                      << reuse.first << "/" << reuse.second
                      << " differs from single-threaded "
                      << baseline_reuse.first << "/" << baseline_reuse.second
                      << " at " << threads << " threads\n";
            return 1;
        }

        const double rate = result.scenarios_per_second();
        if (ti == 0)
            baseline_rate = rate;
        const double speedup = rate / baseline_rate;
        if (threads == 4)
            dag_speedup_at_4t = speedup;
        table.add_row(
            {std::to_string(threads), text_table::num(result.wall_s, 2),
             text_table::num(rate, 3), text_table::num(speedup, 2),
             text_table::num(
                 100.0 * speedup / static_cast<double>(threads), 0),
             text_table::num(100.0 * result.coverage(), 0) + "%"});

        benchutil::json_record rec;
        rec.add("threads", threads);
        rec.add("scenarios", result.scenario_count());
        rec.add("wall_s", result.wall_s);
        rec.add("scenarios_per_sec", rate);
        rec.add("speedup_vs_1t", speedup);
        rec.add("coverage", result.coverage());
        rec.add("yield", result.yield());
        rec.add("stage_hits", result.stage_reuse_hits);
        rec.add("stage_computes", result.stage_reuse_computes);
        rec.add("sched_spawns", delta(telemetry::counter::sched_spawns));
        rec.add("sched_steals", delta(telemetry::counter::sched_steals));
        rec.add("sched_adopt_fastpath",
                delta(telemetry::counter::sched_adopt_fastpath));
        rec.add("stage_waits", delta(telemetry::counter::stage_waits));
        // Where the time went: per-stage mean span cost for this run.
        using telemetry::category;
        const auto& ts = result.telemetry_summary;
        rec.add("stimulus_mean_ns",
                ts.of(category::stage_stimulus).mean_ns());
        rec.add("tx_capture_mean_ns",
                ts.of(category::stage_tx_capture).mean_ns());
        rec.add("calibration_mean_ns",
                ts.of(category::stage_calibration).mean_ns());
        rec.add("reconstruction_mean_ns",
                ts.of(category::stage_reconstruction).mean_ns());
        rec.add("grading_mean_ns", ts.of(category::stage_grading).mean_ns());
        benchutil::emit_bench_json("campaign_throughput", rec);
    }
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\nnote: scenarios are independent engine runs; speedup is "
                 "bounded by physical cores (this host: " << hw << ")\n";

    // The whole point of the dag schedule: pooled grids must scale.  Only
    // meaningful where 4 workers can actually run in parallel.
    if (hw >= 4) {
        if (dag_speedup_at_4t < 3.0) {
            std::cerr << "THROUGHPUT VIOLATION: dag schedule reached only "
                      << text_table::num(dag_speedup_at_4t, 2)
                      << "x at 4 threads (< 3x)\n";
            return 1;
        }
    } else {
        std::cout << "note: host has < 4 hardware threads; the 3x-at-4-"
                     "threads gate is skipped\n";
    }

    // ---- warm-vs-cold result cache on a repeated grid --------------------
    // A regrade (CI rerun, regression sweep) of an already-graded grid
    // should be dominated by cache loads, not engine runs.  The warm run
    // must be bit-identical to the cold one and dramatically faster.
    const std::filesystem::path cache_dir = "bench_campaign_cache.tmp";
    std::filesystem::remove_all(cache_dir);
    cfg.threads = hw;
    cfg.cache_dir = cache_dir.string();

    const auto cold = campaign::campaign_runner(cfg).run();
    const auto warm = campaign::campaign_runner(cfg).run();
    std::filesystem::remove_all(cache_dir);

    campaign::export_options opt;
    opt.include_timing = false;
    if (campaign::to_json(warm, opt) != baseline_json) {
        std::cerr << "CACHE VIOLATION: warm run is not bit-identical\n";
        return 1;
    }
    if (warm.cache_hits != warm.scenario_count() || warm.cache_misses != 0) {
        std::cerr << "CACHE VIOLATION: warm run expected "
                  << warm.scenario_count() << " hits, got "
                  << warm.cache_hits << " hits / " << warm.cache_misses
                  << " misses\n";
        return 1;
    }

    const double warm_speedup = cold.wall_s / warm.wall_s;
    std::cout << "\nresult cache (" << cold.scenario_count()
              << " scenarios): cold " << text_table::num(cold.wall_s, 3)
              << " s -> warm " << text_table::num(warm.wall_s, 3) << " s  ("
              << text_table::num(warm_speedup, 1) << "x, "
              << warm.cache_hits << " hits)\n";

    benchutil::json_record cache_rec;
    cache_rec.add("scenarios", cold.scenario_count());
    cache_rec.add("cold_wall_s", cold.wall_s);
    cache_rec.add("warm_wall_s", warm.wall_s);
    cache_rec.add("warm_speedup", warm_speedup);
    cache_rec.add("cache_hits", warm.cache_hits);
    benchutil::emit_bench_json("campaign_cache_warm", cache_rec);

    // Loading ~KB JSON entries is orders of magnitude cheaper than engine
    // runs; anything below 5x means the cache is broken, not merely slow.
    if (warm_speedup < 5.0) {
        std::cerr << "CACHE VIOLATION: warm speedup "
                  << text_table::num(warm_speedup, 2) << "x < 5x\n";
        return 1;
    }

    // ---- stage-shared pipelines on an overlapping grid -------------------
    // A guard-banding study, the campaign shape the staged pipeline's
    // cross-scenario sharing exists for: one standard graded against three
    // candidate emission masks, Monte-Carlo over the paper's random probe
    // draws (`reseed_policy::probes` — one fixed device, fresh probe
    // placements per trial).  Only the grading stage differs across the
    // mask variants and only calibration-and-later differs across trials,
    // so the runner's planned stage pool computes the stimulus and Tx
    // captures once and each trial's calibration/reconstruction once,
    // instead of per scenario.  Must be bit-identical to the unshared run
    // and substantially faster.
    campaign::campaign_config reuse_cfg;
    reuse_cfg.base.tiadc.quant.full_scale = 2.0;
    reuse_cfg.base.min_output_rms = 1.2;
    {
        const auto preset = waveform::find_preset("paper-qpsk-10M");
        auto strict = preset;
        strict.name = "paper-qpsk-10M/strict";
        strict.mask = waveform::make_strict_mask(
            preset.stimulus.symbol_rate, preset.stimulus.rolloff);
        auto wide_acpr = preset;
        wide_acpr.name = "paper-qpsk-10M/wide-acpr";
        wide_acpr.acpr_offset_hz = 2.2 * preset.stimulus.symbol_rate;
        reuse_cfg.presets = {preset, strict, wide_acpr};
    }
    reuse_cfg.faults = {bist::fault_kind::none};
    reuse_cfg.trials = 4;
    reuse_cfg.reseed = campaign::reseed_policy::probes;
    reuse_cfg.seed = 0xCA59A16Dull;
    reuse_cfg.threads = hw;

    reuse_cfg.stage_sharing.reset();
    const auto unshared = campaign::campaign_runner(reuse_cfg).run();
    reuse_cfg.stage_sharing = bist::stage::reconstruction;
    const auto shared = campaign::campaign_runner(reuse_cfg).run();

    if (campaign::to_json(shared, opt) != campaign::to_json(unshared, opt)) {
        std::cerr << "STAGE-REUSE VIOLATION: shared run is not "
                     "bit-identical\n";
        return 1;
    }
    if (shared.stage_reuse_hits == 0) {
        std::cerr << "STAGE-REUSE VIOLATION: pool never hit\n";
        return 1;
    }

    const double reuse_speedup = unshared.wall_s / shared.wall_s;
    std::cout << "\nstage reuse (" << shared.scenario_count()
              << " scenarios, 3 masks x " << reuse_cfg.trials
              << " probe draws): no-reuse "
              << text_table::num(unshared.wall_s, 3) << " s -> shared "
              << text_table::num(shared.wall_s, 3) << " s  ("
              << text_table::num(reuse_speedup, 2) << "x, "
              << shared.stage_reuse_hits << " adopted / "
              << shared.stage_reuse_computes << " computed)\n";

    benchutil::json_record reuse_rec;
    reuse_rec.add("scenarios", shared.scenario_count());
    reuse_rec.add("trials", reuse_cfg.trials);
    reuse_rec.add("no_reuse_wall_s", unshared.wall_s);
    reuse_rec.add("reuse_wall_s", shared.wall_s);
    reuse_rec.add("speedup", reuse_speedup);
    reuse_rec.add("stage_hits", shared.stage_reuse_hits);
    reuse_rec.add("stage_computes", shared.stage_reuse_computes);
    benchutil::emit_bench_json("campaign_stage_reuse", reuse_rec);

    // The pool removes ~10 of 12 calibration+reconstruction runs on this
    // grid; anything below 1.3x means sharing has stopped engaging.
    if (reuse_speedup < 1.3) {
        std::cerr << "STAGE-REUSE VIOLATION: speedup "
                  << text_table::num(reuse_speedup, 2) << "x < 1.3x\n";
        return 1;
    }

    // ---- persistent stage-artefact store: warm over cold -----------------
    // Same guard-banding grid, now with `--stage-store`: the cold run
    // computes every stage once and publishes the compressed snapshots;
    // the warm run adopts them all back (round-tripped through the byte
    // codec and the JSON stage codec), so no pipeline stage runs at all.
    // Both must be bit-identical to the store-disabled run — the store
    // only ever substitutes element-exact artefacts for computes.
    const std::filesystem::path store_dir = "bench_campaign_store.tmp";
    std::filesystem::remove_all(store_dir);
    campaign::campaign_config store_cfg = reuse_cfg;
    store_cfg.stage_store_dir = store_dir.string();

    const auto store_cold = campaign::campaign_runner(store_cfg).run();
    const auto store_warm = campaign::campaign_runner(store_cfg).run();
    std::filesystem::remove_all(store_dir);

    if (campaign::to_json(store_cold, opt) != campaign::to_json(shared, opt) ||
        campaign::to_json(store_warm, opt) != campaign::to_json(shared, opt)) {
        std::cerr << "STAGE-STORE VIOLATION: store-enabled run is not "
                     "bit-identical to the store-disabled run\n";
        return 1;
    }
    if (store_warm.store_hits == 0 || store_warm.store_misses != 0) {
        std::cerr << "STAGE-STORE VIOLATION: warm run expected all hits, "
                     "got " << store_warm.store_hits << " hits / "
                  << store_warm.store_misses << " misses\n";
        return 1;
    }

    const double store_speedup = store_cold.wall_s / store_warm.wall_s;
    std::cout << "\nstage store (" << store_warm.scenario_count()
              << " scenarios): cold "
              << text_table::num(store_cold.wall_s, 3) << " s -> warm "
              << text_table::num(store_warm.wall_s, 3) << " s  ("
              << text_table::num(store_speedup, 2) << "x, "
              << store_warm.store_hits << " hits, "
              << store_warm.store_bytes << " bytes served)\n";

    benchutil::json_record store_rec;
    store_rec.add("scenarios", store_warm.scenario_count());
    store_rec.add("cold_wall_s", store_cold.wall_s);
    store_rec.add("warm_wall_s", store_warm.wall_s);
    store_rec.add("warm_speedup", store_speedup);
    store_rec.add("store_hits", store_warm.store_hits);
    store_rec.add("store_bytes",
                  static_cast<std::size_t>(store_warm.store_bytes));
    benchutil::emit_bench_json("campaign_stage_store", store_rec);

    // Decompress-and-decode is far cheaper than the pipeline stages it
    // replaces; below 2x the store has stopped engaging.
    if (store_speedup < 2.0) {
        std::cerr << "STAGE-STORE VIOLATION: warm speedup "
                  << text_table::num(store_speedup, 2) << "x < 2x\n";
        return 1;
    }

    // ---- trace-capture overhead ------------------------------------------
    // The telemetry contract: tracing must never change the results and
    // should cost low single-digit percent.  Re-run the throughput grid
    // fully untraced, then with trace-event capture, compare artefacts and
    // measure the wall-time delta.  The overhead is reported, not asserted
    // (a loaded CI host produces wall-time noise of the same magnitude).
    campaign::campaign_config trace_cfg = cfg;
    trace_cfg.cache_dir.clear();
    trace_cfg.threads = hw;

    telemetry::disable();
    const auto plain = campaign::campaign_runner(trace_cfg).run();
    telemetry::reset();
    telemetry::enable(/*capture_trace=*/true);
    const auto traced = campaign::campaign_runner(trace_cfg).run();
    const std::size_t trace_events = telemetry::trace_event_count();
    telemetry::disable();

    if (campaign::to_json(traced, opt) != campaign::to_json(plain, opt)) {
        std::cerr << "TRACE VIOLATION: traced run is not bit-identical\n";
        return 1;
    }

    const double overhead_pct =
        100.0 * (traced.wall_s - plain.wall_s) / plain.wall_s;
    const double coverage = span_coverage(traced);
    std::cout << "\ntrace capture (" << traced.scenario_count()
              << " scenarios): untraced "
              << text_table::num(plain.wall_s, 3) << " s -> traced "
              << text_table::num(traced.wall_s, 3) << " s  ("
              << text_table::num(overhead_pct, 1) << "% overhead, "
              << trace_events << " events, span coverage "
              << text_table::num(100.0 * coverage, 1) << "%)\n";

    benchutil::json_record trace_rec;
    trace_rec.add("scenarios", traced.scenario_count());
    trace_rec.add("untraced_wall_s", plain.wall_s);
    trace_rec.add("traced_wall_s", traced.wall_s);
    trace_rec.add("overhead_pct", overhead_pct);
    trace_rec.add("trace_events", trace_events);
    trace_rec.add("span_coverage", coverage);
    benchutil::emit_bench_json("campaign_trace_overhead", trace_rec);

    // ---- fault-tolerance: containment and probe cost ---------------------
    // (a) Containment, hard-asserted: low-rate transient injection at
    // every registered site must retry its way to the exact artefacts of
    // the clean run above.  (b) Probe cost: the injection probes are
    // compiled into the hot paths permanently, so the disarmed cost is a
    // repeat-run wall delta — reported, and only sanity-bounded, because
    // a loaded CI host produces wall noise of the same magnitude (the
    // trace-overhead section above sets that precedent).
    campaign::campaign_config fault_cfg = trace_cfg;
    fault_cfg.max_retries = 8;
    fault_cfg.retry_backoff_ms = 0.0;

    const auto disarmed_a = campaign::campaign_runner(fault_cfg).run();
    const auto disarmed_b = campaign::campaign_runner(fault_cfg).run();

    fault_injection::arm("*:throw-transient:p=0.05,seed=3917");
    const auto faulted = campaign::campaign_runner(fault_cfg).run();
    fault_injection::disarm();

    if (campaign::to_json(faulted, opt) !=
        campaign::to_json(disarmed_a, opt)) {
        std::cerr << "FAULT-TOLERANCE VIOLATION: injected run is not "
                     "bit-identical to the clean run\n";
        return 1;
    }
    if (faulted.scenario_gave_up != 0) {
        std::cerr << "FAULT-TOLERANCE VIOLATION: " << faulted.scenario_gave_up
                  << " scenarios gave up under p=0.05 with "
                  << fault_cfg.max_retries << " retries\n";
        return 1;
    }

    const double disarmed_overhead_pct =
        100.0 * (disarmed_b.wall_s - disarmed_a.wall_s) / disarmed_a.wall_s;
    const double faulted_overhead_pct =
        100.0 * (faulted.wall_s - disarmed_a.wall_s) / disarmed_a.wall_s;
    std::cout << "\nfault tolerance (" << faulted.scenario_count()
              << " scenarios, p=0.05 at every site): "
              << faulted.scenario_retries << " retries, bit-identical ("
              << text_table::num(faulted_overhead_pct, 1)
              << "% slower); disarmed repeat delta "
              << text_table::num(disarmed_overhead_pct, 1) << "%\n";

    benchutil::json_record fault_rec;
    fault_rec.add("scenarios", faulted.scenario_count());
    fault_rec.add("clean_wall_s", disarmed_a.wall_s);
    fault_rec.add("disarmed_repeat_wall_s", disarmed_b.wall_s);
    fault_rec.add("disarmed_overhead_pct", disarmed_overhead_pct);
    fault_rec.add("faulted_wall_s", faulted.wall_s);
    fault_rec.add("faulted_overhead_pct", faulted_overhead_pct);
    fault_rec.add("retries", faulted.scenario_retries);
    benchutil::emit_bench_json("campaign_fault_tolerance", fault_rec);

    // Catastrophic-regression guard only (e.g. a disarmed probe growing a
    // lock); genuine sub-percent costs drown in scheduler noise here.
    if (disarmed_overhead_pct > 20.0) {
        std::cerr << "FAULT-PROBE VIOLATION: disarmed repeat delta "
                  << text_table::num(disarmed_overhead_pct, 1)
                  << "% > 20%\n";
        return 1;
    }

    // ---- distributed-service overhead ------------------------------------
    // Coordinator + two loopback workers on the same grid: the service's
    // framing, leasing and merge must stay bit-identical to the local run
    // (hard-asserted), and the wall-time cost of shipping every row and
    // lease result over TCP is reported as a trajectory number.
    campaign::service::service_config svc;
    svc.lease_size = 4;
    svc.heartbeat_s = 2.0;
    campaign::service::coordinator coord(trace_cfg, svc);
    svc.port = coord.port();
    // merge_results sums the per-lease wall times (worker compute), so
    // end-to-end distributed wall is measured around the whole session.
    const auto dist_t0 = std::chrono::steady_clock::now();
    auto served = std::async(std::launch::async, [&] { return coord.serve(); });
    auto worker_a = std::async(std::launch::async, [&] {
        return campaign::service::run_worker(trace_cfg, svc);
    });
    auto worker_b = std::async(std::launch::async, [&] {
        return campaign::service::run_worker(trace_cfg, svc);
    });
    worker_a.get();
    worker_b.get();
    const campaign::service::service_report dist = served.get();
    const double dist_wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      dist_t0)
            .count();

    if (campaign::to_json(dist.result, opt) != campaign::to_json(plain, opt)) {
        std::cerr << "SERVICE VIOLATION: distributed run is not "
                     "bit-identical to the local run\n";
        return 1;
    }

    const double service_overhead_pct =
        100.0 * (dist_wall_s - plain.wall_s) / plain.wall_s;
    std::cout << "\ndistributed service (" << dist.result.scenario_count()
              << " scenarios, 2 workers, lease size " << svc.lease_size
              << "): local " << text_table::num(plain.wall_s, 3)
              << " s -> distributed "
              << text_table::num(dist_wall_s, 3) << " s  ("
              << text_table::num(service_overhead_pct, 1) << "% overhead, "
              << dist.leases.leases << " leases, " << dist.leases.requeues
              << " re-queued)\n";

    benchutil::json_record svc_rec;
    svc_rec.add("scenarios", dist.result.scenario_count());
    svc_rec.add("local_wall_s", plain.wall_s);
    svc_rec.add("distributed_wall_s", dist_wall_s);
    svc_rec.add("overhead_pct", service_overhead_pct);
    svc_rec.add("leases", dist.leases.leases);
    svc_rec.add("requeues", dist.leases.requeues);
    svc_rec.add("workers", std::size_t{2});
    benchutil::emit_bench_json("campaign_service_overhead", svc_rec);
    return 0;
}

/// \file fig2_spectrum_reconstruction.cpp
/// \brief The BIST deliverable the paper's introduction motivates (and
///        Fig. 2 illustrates): the spectrum of the PA output, reconstructed
///        from the nonuniform samples, compared against the true transmitted
///        spectrum and graded against the emission mask.
///
/// Expected shape: reconstructed PSD matches the true PSD inside the band
/// (within ~1 dB); out-of-band it floors at the jitter-induced noise floor
/// (~ -44 dBc for 3 ps at 1 GHz — the paper's §II-B3 wideband-noise
/// limitation); the golden device passes the mask.
#include <iostream>

#include "bench_util.hpp"
#include "core/table.hpp"
#include "dsp/psd.hpp"

int main() {
    using namespace sdrbist;

    const auto run = benchutil::run_paper_engine();

    // True PSD: welch on the (wide-filtered) capture-path envelope.
    dsp::welch_options wopt;
    wopt.segment_length = 256;
    const auto& env_true_src = run.art.spectrum_input;
    // Re-sample the true envelope at the reconstructed envelope's rate via
    // its own samples (the tx envelope rate is fine for a PSD comparison).
    const auto psd_true = dsp::welch_psd(
        std::span<const std::complex<double>>(
            run.art.tx_out.envelope.data(), run.art.tx_out.envelope.size()),
        run.art.tx_out.envelope_rate, wopt);
    (void)env_true_src;

    const auto psd_rec = bist::envelope_psd(run.art.envelope, 256);

    const double ref_true = psd_true.peak_density(-7.5 * MHz, 7.5 * MHz);
    const double ref_rec = psd_rec.peak_density(-7.5 * MHz, 7.5 * MHz);

    std::cout << "Fig. 2 / BIST spectrum — reconstructed vs transmitted PSD "
                 "(dBc, 1.4 MHz bins)\n\n";
    text_table table({"offset [MHz]", "transmitted [dBc]",
                      "reconstructed [dBc]"});
    for (double off = -40.0 * MHz; off <= 40.0 * MHz + 1.0;
         off += 2.5 * MHz) {
        const double p_true =
            psd_true.peak_density(off - 1.0 * MHz, off + 1.0 * MHz);
        const double p_rec =
            psd_rec.peak_density(off - 1.0 * MHz, off + 1.0 * MHz);
        table.add_row(
            {text_table::num(off / MHz, 1),
             p_true > 0.0 ? text_table::num(db_from_power(p_true / ref_true), 1)
                          : "-inf",
             p_rec > 0.0 ? text_table::num(db_from_power(p_rec / ref_rec), 1)
                         : "-inf"});
    }
    table.print(std::cout);

    std::cout << "\nmask verdict on the reconstructed spectrum:\n";
    for (const auto& seg : run.report.mask.segments)
        std::cout << "  [" << seg.segment.offset_lo_hz / MHz << ", "
                  << seg.segment.offset_hi_hz / MHz << "] MHz: measured "
                  << seg.measured_dbc << " dBc, limit "
                  << seg.segment.limit_dbc << " dBc -> "
                  << (seg.pass ? "pass" : "FAIL") << "\n";
    std::cout << "  overall: " << (run.report.mask.pass ? "PASS" : "FAIL")
              << " (worst margin " << run.report.mask.worst_margin_db
              << " dB)\n";
    std::cout << "\nEVM of the reconstructed waveform: "
              << run.report.evm.evm_percent() << " % rms\n";
    return 0;
}

/// \file table1_timeskew.cpp
/// \brief Regenerates paper Table I — time-skew estimation analysis.
///
/// Rows 1-2: the sine-fit technique adapted from Jamal et al. 2004 with a
/// known test tone observed at ω0 = 0.4·B and 0.46·B.
/// Rows 3-4: the paper's LMS technique from D̂0 = 50 ps and 400 ps.
/// Columns: |D̂ - D|, |1 - D̂/D|, and the relative reconstruction error
/// Δε of the QPSK test signal rebuilt with each estimate.
///
/// Expected shape: LMS error small and independent of D̂0; sine-fit error
/// depends on ω0 (worse at 0.4·B, where the tone revisits only 5 distinct
/// sample phases and quantisation bias does not average out).
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "calib/jamal.hpp"
#include "calib/lms.hpp"
#include "core/table.hpp"

namespace {

using namespace sdrbist;

// Capture a known RF test tone with the same BP-TIADC and return the
// sine-fit skew estimate.  omega_norm = observed tone frequency / B.
calib::jamal_estimate jamal_row(const benchutil::paper_run& run,
                                double omega_norm) {
    const double b = run.config.tiadc.channel_rate_hz;
    const double fc = run.config.preset.default_carrier_hz;
    // Choose the RF tone inside the band that folds to omega_norm · B:
    // fc = 11.111·B  =>  fc mod B = 0.1111·B; add the needed offset.
    const double frac_fc = std::fmod(fc / b, 1.0);
    double delta = (omega_norm - frac_fc) * b;
    if (delta < -0.45 * b)
        delta += b;
    const double f_tone = fc + delta;

    rf::multitone_signal tone({{f_tone, 1.0, 0.4}}, 12.0 * us);

    adc::bp_tiadc sampler(run.config.tiadc);
    sampler.program_delay(run.config.dcde_target_delay_s);
    sampler.set_input_scale(0.65 * run.config.tiadc.quant.full_scale);
    const auto cap = sampler.capture(tone, 1.0 * us, 720, /*capture*/ 7);

    calib::jamal_options opt;
    opt.max_delay_s = 483.0 * ps;
    return calib::estimate_skew_sine_fit(cap, f_tone, opt);
}

} // namespace

int main() {
    using namespace sdrbist;

    const auto run = benchutil::run_paper_engine();
    const double d_true = run.art.capture.fast.true_delay_s;

    std::cout << "Table I — time-skew estimation analysis (true D = "
              << d_true / ps << " ps)\n\n";

    text_table table({"technique", "|D-hat - D| [ps]", "|1 - D-hat/D| [%]",
                      "delta-eps(recon) [%]"});

    // Sine-fit (Jamal-adapted) rows.
    for (double omega : {0.40, 0.46}) {
        const auto est = jamal_row(run, omega);
        const double derr = std::abs(est.d_hat - d_true);
        const double rel = std::abs(1.0 - est.d_hat / d_true);
        const double deps = benchutil::reconstruction_rel_error(run, est.d_hat);
        table.add_row({"sine-fit w0=" + text_table::num(omega, 2) + "B",
                       text_table::num(derr / ps, 3),
                       text_table::num(100.0 * rel, 3),
                       text_table::num(100.0 * deps, 2)});
    }

    // LMS rows.
    const calib::lms_skew_estimator estimator(run.config.lms);
    for (double d0 : {50.0 * ps, 400.0 * ps}) {
        const auto est =
            estimator.estimate(run.art.capture, d0, run.art.probe_times);
        const double derr = std::abs(est.d_hat - d_true);
        const double rel = std::abs(1.0 - est.d_hat / d_true);
        const double deps = benchutil::reconstruction_rel_error(run, est.d_hat);
        table.add_row({"LMS D0=" + text_table::num(d0 / ps, 0) + "ps",
                       text_table::num(derr / ps, 3),
                       text_table::num(100.0 * rel, 3),
                       text_table::num(100.0 * deps, 2)});
    }
    table.print(std::cout);

    std::cout << "\npaper values for comparison:\n"
              << "  w0=0.40B : 5 ps    2.8 %   3.5 %\n"
              << "  w0=0.46B : 0.3 ps  0.1 %   1.0 %\n"
              << "  D0=50 ps : <0.1 ps <0.1 %  0.84 %\n"
              << "  D0=400 ps: <0.1 ps <0.1 %  0.84 %\n"
              << "shape to reproduce: LMS insensitive to D0; sine-fit "
                 "accuracy depends on w0 (0.40B worse); reconstruction floor "
                 "~1 % set by 3 ps jitter + 10-bit quantisation\n";
    return 0;
}

// Hot-path kernel engine bench: the two inner loops every campaign
// scenario traverses thousands of times, timed fast-path vs reference.
//
//  * PNBS uniform() reconstruction — the fused Kohlenberg evaluation
//    (rotation recurrences + window LUT) against the per-tap
//    transcendental reference (paper eq. (6)).
//  * Windowed-sinc interpolated capture — the polyphase-LUT interpolator
//    behind every BP-TIADC capture against the two-Bessel-series-per-tap
//    reference.
//
//  * SIMD backend primitives — every compiled-in, CPU-supported kernel
//    backend (scalar/AVX2/NEON) timed on the primitive shapes the hot
//    paths dispatch to, reported as speedup vs the scalar backend.
//
// Emits one BENCH_JSON line per kernel with ns/point for both paths, the
// speedup, and the max relative error of the fast path (normalised to the
// reference RMS), plus one BENCH_JSON line per backend with the per-kernel
// speedups.  Run with --quick for CI smoke timing.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <complex>
#include <cstring>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/random.hpp"
#include "core/simd/kernel_backend.hpp"
#include "core/stats.hpp"
#include "core/units.hpp"
#include "dsp/interpolator.hpp"
#include "rf/passband.hpp"
#include "sampling/band.hpp"
#include "sampling/pnbs.hpp"

namespace {

using namespace sdrbist;

/// Best-of-`reps` wall time of fn(), in seconds.
template <class F> double best_seconds(F&& fn, int reps) {
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

double max_rel_error(const std::vector<double>& ref,
                     const std::vector<double>& fast) {
    const double scale = rms(ref);
    double worst = 0.0;
    for (std::size_t i = 0; i < ref.size(); ++i)
        worst = std::max(worst, std::abs(fast[i] - ref[i]));
    return worst / scale;
}

void bench_pnbs_uniform(std::size_t n_points, int reps) {
    const sampling::band_spec band =
        sampling::band_around(1.0 * GHz, 90.0 * MHz);
    const double period = 1.0 / band.bandwidth();
    const double d = 180.0 * ps;
    const std::size_t n = 600;

    rng gen(0xB157);
    std::vector<rf::tone> tones;
    for (int i = 0; i < 5; ++i)
        tones.push_back({gen.uniform(band.f_lo + 8.0 * MHz,
                                     band.f_hi - 8.0 * MHz),
                         gen.uniform(0.2, 1.0), gen.uniform(0.0, two_pi)});
    const rf::multitone_signal sig(std::move(tones),
                                   static_cast<double>(n) * period + 1.0 * us);

    std::vector<double> even(n), odd(n);
    for (std::size_t k = 0; k < n; ++k) {
        even[k] = sig.value(static_cast<double>(k) * period);
        odd[k] = sig.value(static_cast<double>(k) * period + d);
    }
    const sampling::pnbs_reconstructor recon(even, odd, period, 0.0, band, d,
                                             {61, 8.0});

    // Dense grid spanning the whole valid reconstruction interval.
    const double t_lo = recon.valid_begin();
    const double rate =
        static_cast<double>(n_points) / (recon.valid_end() - t_lo);

    std::vector<double> fast, ref;
    const double s_fast = best_seconds(
        [&] { fast = recon.uniform(t_lo, rate, n_points); }, reps);
    const double s_ref = best_seconds(
        [&] { ref = recon.uniform_reference(t_lo, rate, n_points); }, reps);

    const double err = max_rel_error(ref, fast);
    benchutil::json_record rec;
    rec.add("kernel", std::string("pnbs_uniform"));
    rec.add("backend", std::string(simd::kernel_backend::select().name));
    rec.add("points", n_points);
    rec.add("taps", std::size_t{61});
    rec.add("ref_ns_per_point", 1e9 * s_ref / static_cast<double>(n_points));
    rec.add("fast_ns_per_point",
            1e9 * s_fast / static_cast<double>(n_points));
    rec.add("speedup", s_ref / s_fast);
    rec.add("max_rel_error", err);
    benchutil::emit_bench_json("perf_hotpath", rec);

    std::cout << "pnbs uniform: " << 1e9 * s_ref / n_points << " -> "
              << 1e9 * s_fast / n_points << " ns/point  (x"
              << s_ref / s_fast << ", max rel err " << err << ")\n";
}

void bench_sinc_capture(std::size_t n_points, int reps) {
    // Capture-path setup: complex envelope at 180 MHz feeding a 1 GHz
    // carrier, probed at jittered nonuniform instants like a BP-TIADC
    // record.
    const double env_rate = 180.0 * MHz;
    const std::size_t n_env = 4096;
    rng gen(0xCAB7);
    std::vector<std::complex<double>> env(n_env);
    // Smooth in-band envelope: random phasor sum at a few offsets.
    for (std::size_t i = 0; i < n_env; ++i) {
        const double tt = static_cast<double>(i) / env_rate;
        env[i] = std::polar(1.0, two_pi * 11.0 * MHz * tt + 0.4) +
                 std::polar(0.6, -two_pi * 23.0 * MHz * tt + 1.1);
    }
    const dsp::complex_interpolator interp(std::move(env), env_rate, 32,
                                           10.0);

    const double t_lo = interp.valid_begin();
    const double t_hi = interp.valid_end();
    std::vector<double> t(n_points);
    const double channel_period = (t_hi - t_lo) / static_cast<double>(n_points + 1);
    for (std::size_t k = 0; k < n_points; ++k)
        t[k] = t_lo + static_cast<double>(k) * channel_period +
               gen.gaussian(0.0, 3.0 * ps);

    std::vector<std::complex<double>> fast, ref;
    const double s_fast =
        best_seconds([&] { fast = interp.at(t); }, reps);
    const double s_ref = best_seconds(
        [&] {
            ref.resize(t.size());
            for (std::size_t i = 0; i < t.size(); ++i)
                ref[i] = interp.at_reference(t[i]);
        },
        reps);

    // Relative error on the real capture samples (Re/Im both bounded).
    double scale = 0.0;
    double worst = 0.0;
    for (const auto& v : ref)
        scale += std::norm(v);
    scale = std::sqrt(scale / static_cast<double>(ref.size()));
    for (std::size_t i = 0; i < ref.size(); ++i)
        worst = std::max(worst, std::abs(fast[i] - ref[i]));
    const double err = worst / scale;

    benchutil::json_record rec;
    rec.add("kernel", std::string("sinc_capture"));
    rec.add("backend", std::string(simd::kernel_backend::select().name));
    rec.add("points", n_points);
    rec.add("half_taps", std::size_t{32});
    rec.add("ref_ns_per_point", 1e9 * s_ref / static_cast<double>(n_points));
    rec.add("fast_ns_per_point",
            1e9 * s_fast / static_cast<double>(n_points));
    rec.add("speedup", s_ref / s_fast);
    rec.add("max_rel_error", err);
    benchutil::emit_bench_json("perf_hotpath", rec);

    std::cout << "sinc capture: " << 1e9 * s_ref / n_points << " -> "
              << 1e9 * s_fast / n_points << " ns/point  (x"
              << s_ref / s_fast << ", max rel err " << err << ")\n";
}

/// Per-backend primitive bench: every CPU-supported backend timed on the
/// kernel shapes the hot paths dispatch to (PNBS 61-tap dual dot, 64-tap
/// polyphase blends, 4096-sample capture records), reported as speedup of
/// each kernel vs the scalar backend.  One BENCH_JSON record per backend.
void bench_backend_kernels(int reps) {
    using simd::kernel_backend;
    using simd::kernel_ops;

    rng gen(0x51BD);
    // PNBS stage-2 shape: the paper's 61-tap window.
    const std::size_t n_dot = 61;
    const auto ev = gen.uniform_vector(n_dot, -1.0, 1.0);
    const auto ce = gen.uniform_vector(n_dot, -1.0, 1.0);
    const auto od = gen.uniform_vector(n_dot, -1.0, 1.0);
    const auto co = gen.uniform_vector(n_dot, -1.0, 1.0);
    // Interpolator shape: 2·half_taps = 64 taps, 4 consecutive LUT rows.
    const std::size_t n_blend = 64;
    const auto rows = gen.uniform_vector(4 * n_blend, -1.0, 1.0);
    const auto w = gen.uniform_vector(4, -1.0, 1.0);
    const auto xr = gen.uniform_vector(n_blend, -1.0, 1.0);
    std::vector<std::complex<double>> xc(n_blend);
    for (auto& v : xc)
        v = {gen.uniform(-1.0, 1.0), gen.uniform(-1.0, 1.0)};
    // Capture-record shape.
    const std::size_t n_rec = 4096;
    const auto rec_in = gen.uniform_vector(n_rec, -3.0, 3.0);
    std::vector<std::complex<double>> env(n_rec);
    for (auto& v : env)
        v = {gen.uniform(-1.0, 1.0), gen.uniform(-1.0, 1.0)};
    const auto cos_wt = gen.uniform_vector(n_rec, -1.0, 1.0);
    const auto sin_wt = gen.uniform_vector(n_rec, -1.0, 1.0);
    std::vector<double> rec_out(n_rec);
    simd::quantize_params qp;
    qp.gain = 1.013;
    qp.offset = -0.004;
    qp.clip_lo = -2.0;
    qp.clip_hi = 2.0 - 1e-9;
    qp.lsb = 4.0 / 1024.0;

    const int calls = 20000; // per timed sample, small-kernel loops
    const int rec_calls = 400;
    double sink = 0.0;

    struct timing {
        double dot2_ns = 0.0;       // per tap
        double blend_ns = 0.0;      // per tap
        double blend_cplx_ns = 0.0; // per tap
        double quantize_ns = 0.0;   // per sample
        double mix_ns = 0.0;        // per sample
    };
    auto time_backend = [&](const kernel_ops& ops) {
        timing t;
        t.dot2_ns = 1e9 *
                    best_seconds(
                        [&] {
                            double a = 0.0, b = 0.0;
                            for (int k = 0; k < calls; ++k) {
                                ops.dot2(ev.data(), ce.data(), od.data(),
                                         co.data(), n_dot, &a, &b);
                                sink += a + b;
                            }
                        },
                        reps) /
                    (static_cast<double>(calls) * static_cast<double>(n_dot));
        t.blend_ns =
            1e9 *
            best_seconds(
                [&] {
                    for (int k = 0; k < calls; ++k)
                        sink += ops.blend_dot(xr.data(), rows.data(), n_blend,
                                              w.data(), n_blend);
                },
                reps) /
            (static_cast<double>(calls) * static_cast<double>(n_blend));
        t.blend_cplx_ns =
            1e9 *
            best_seconds(
                [&] {
                    for (int k = 0; k < calls; ++k)
                        sink += ops.blend_dot_cplx(xc.data(), rows.data(),
                                                   n_blend, w.data(), n_blend)
                                    .real();
                },
                reps) /
            (static_cast<double>(calls) * static_cast<double>(n_blend));
        t.quantize_ns =
            1e9 *
            best_seconds(
                [&] {
                    for (int k = 0; k < rec_calls; ++k) {
                        ops.quantize_midrise(rec_in.data(), rec_out.data(),
                                             n_rec, 0.7, qp);
                        sink += rec_out[k % n_rec];
                    }
                },
                reps) /
            (static_cast<double>(rec_calls) * static_cast<double>(n_rec));
        t.mix_ns = 1e9 *
                   best_seconds(
                       [&] {
                           for (int k = 0; k < rec_calls; ++k) {
                               ops.carrier_mix(env.data(), cos_wt.data(),
                                               sin_wt.data(), rec_out.data(),
                                               n_rec);
                               sink += rec_out[k % n_rec];
                           }
                       },
                       reps) /
                   (static_cast<double>(rec_calls) *
                    static_cast<double>(n_rec));
        return t;
    };

    const timing scalar_t = time_backend(simd::scalar_ops());
    const char* dispatched = kernel_backend::select().name;
    for (const auto* ops : kernel_backend::available()) {
        const timing t = (std::strcmp(ops->name, "scalar") == 0)
                             ? scalar_t
                             : time_backend(*ops);
        const double speedups[] = {
            scalar_t.dot2_ns / t.dot2_ns,
            scalar_t.blend_ns / t.blend_ns,
            scalar_t.blend_cplx_ns / t.blend_cplx_ns,
            scalar_t.quantize_ns / t.quantize_ns,
            scalar_t.mix_ns / t.mix_ns,
        };
        const double best =
            *std::max_element(std::begin(speedups), std::end(speedups));

        benchutil::json_record rec;
        rec.add("kernel", std::string("backend_kernels"));
        rec.add("backend", std::string(ops->name));
        rec.add("dispatched",
                std::size_t{std::strcmp(ops->name, dispatched) == 0 ? 1u
                                                                    : 0u});
        rec.add("dot2_ns_per_tap", t.dot2_ns);
        rec.add("blend_dot_ns_per_tap", t.blend_ns);
        rec.add("blend_dot_cplx_ns_per_tap", t.blend_cplx_ns);
        rec.add("quantize_ns_per_sample", t.quantize_ns);
        rec.add("carrier_mix_ns_per_sample", t.mix_ns);
        rec.add("dot2_speedup", speedups[0]);
        rec.add("blend_dot_speedup", speedups[1]);
        rec.add("blend_dot_cplx_speedup", speedups[2]);
        rec.add("quantize_speedup", speedups[3]);
        rec.add("carrier_mix_speedup", speedups[4]);
        rec.add("best_speedup", best);
        benchutil::emit_bench_json("perf_hotpath", rec);

        std::cout << "backend " << ops->name << ": dot2 x" << speedups[0]
                  << ", blend x" << speedups[1] << ", blend_cplx x"
                  << speedups[2] << ", quantize x" << speedups[3]
                  << ", mix x" << speedups[4] << "  (best x" << best
                  << ")\n";
    }
    if (sink == 42.25) // defeat dead-code elimination of the timed loops
        std::cout << "";
}

} // namespace

int main(int argc, char** argv) {
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;

    const std::size_t n_points = quick ? 2000 : 8000;
    const int reps = quick ? 3 : 5;
    bench_pnbs_uniform(n_points, reps);
    bench_sinc_capture(n_points, reps);
    bench_backend_kernels(reps);
    return 0;
}

/// \file abl_jitter_sweep.cpp
/// \brief Ablation: sampling-clock jitter (the paper fixes 3 ps rms).
///        Sweeps the jitter and reports skew-estimation error and the
///        reconstruction error floor.
///
/// Expected shape: the reconstruction floor scales linearly with jitter
/// (error ≈ 2π·fc·σ_j); the LMS estimate degrades gracefully because the
/// cost averages N probes.
#include <iostream>

#include "bench_util.hpp"
#include "calib/lms.hpp"
#include "core/table.hpp"

int main() {
    using namespace sdrbist;

    std::cout << "Ablation — clock jitter (paper: 3 ps rms)\n\n";
    text_table table({"jitter [ps rms]", "|D-hat - D| [ps]",
                      "recon error [%]", "analytic floor 2*pi*fc*sigma [%]"});
    for (double jit_ps : {0.0, 1.0, 3.0, 6.0, 10.0}) {
        const auto run = benchutil::run_paper_engine(
            [&](bist::bist_config& c) {
                c.tiadc.jitter_rms_s = jit_ps * ps;
            });
        const double d_true = run.art.capture.fast.true_delay_s;
        const double err = std::abs(run.report.skew.d_hat - d_true);
        const double rec =
            benchutil::reconstruction_rel_error(run, run.report.skew.d_hat);
        const double analytic =
            two_pi * run.config.preset.default_carrier_hz * jit_ps * ps;
        table.add_row({text_table::num(jit_ps, 1),
                       text_table::num(err / ps, 3),
                       text_table::num(100.0 * rec, 2),
                       text_table::num(100.0 * analytic, 2)});
    }
    table.print(std::cout);
    std::cout << "\nreading: the reconstruction floor tracks the analytic "
                 "jitter noise 2*pi*fc*sigma; skew estimation stays sub-ps "
                 "well past the paper's 3 ps\n";
    return 0;
}

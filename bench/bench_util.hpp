/// \file bench_util.hpp
/// \brief Shared scenario builders for the figure/table reproduction
///        harnesses: the paper's evaluation setup (QPSK/SRRC at 1 GHz,
///        10-bit BP-TIADC at 90 + 45 MHz, 3 ps jitter, D = 180 ps) and the
///        reconstruction-error evaluator used by Table I.
#pragma once

#include <cmath>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bist/engine.hpp"
#include "campaign/export.hpp"
#include "core/stats.hpp"
#include "core/units.hpp"

namespace sdrbist::benchutil {

// ---------------------------------------------------------------------------
// Machine-readable bench output.
//
// Perf benches print one `BENCH_JSON {...}` line per result so dashboards
// and future PRs can track the trajectory with
// `./bench_x | grep ^BENCH_JSON | cut -d' ' -f2-`.  Keys are emitted in
// insertion order, numbers in shortest round-trip form.
// ---------------------------------------------------------------------------

/// One flat JSON record assembled field by field.
class json_record {
public:
    json_record& add(const std::string& key, double value) {
        return add_raw(key, campaign::json_number(value));
    }
    json_record& add(const std::string& key, std::size_t value) {
        return add_raw(key, std::to_string(value));
    }
    json_record& add(const std::string& key, const std::string& value) {
        return add_raw(key, campaign::json_quote(value));
    }
    /// Append a pre-rendered JSON value (nested array/object).
    json_record& add_raw(const std::string& key, const std::string& raw) {
        fields_.emplace_back(key, raw);
        return *this;
    }
    /// Append all fields of another record.
    json_record& merge(const json_record& other) {
        fields_.insert(fields_.end(), other.fields_.begin(),
                       other.fields_.end());
        return *this;
    }
    [[nodiscard]] std::string str() const {
        std::string out = "{";
        for (std::size_t i = 0; i < fields_.size(); ++i) {
            if (i)
                out += ',';
            out += campaign::json_quote(fields_[i].first) + ":" +
                   fields_[i].second;
        }
        return out + "}";
    }

private:
    std::vector<std::pair<std::string, std::string>> fields_;
};

/// Print the canonical machine-readable line for one bench result.
inline void emit_bench_json(const std::string& bench_name,
                            const json_record& record,
                            std::ostream& os = std::cout) {
    json_record line;
    line.add("bench", bench_name);
    line.merge(record);
    os << "BENCH_JSON " << line.str() << "\n";
}

/// One fully-executed paper-configuration BIST run.
struct paper_run {
    bist::bist_config config;
    bist::bist_report report;
    bist::bist_artifacts art;
};

/// Execute the default (paper) configuration and keep all artefacts.
inline paper_run run_paper_engine(
    const std::function<void(bist::bist_config&)>& tweak = {}) {
    paper_run r;
    r.config.tiadc.quant.full_scale = 2.0;
    if (tweak)
        tweak(r.config);
    const bist::bist_engine engine(r.config);
    auto [report, art] = engine.run_verbose();
    r.report = std::move(report);
    r.art = std::move(art);
    return r;
}

/// Relative RMS error between the reconstruction of the estimation capture
/// under hypothesis `d_hat` and the true (analog) capture-path signal —
/// the paper's Δε(f^T_D̂(t)) column of Table I.
inline double reconstruction_rel_error(const paper_run& run, double d_hat,
                                       std::size_t n_eval = 400,
                                       std::uint64_t seed = 0xE7A1) {
    const auto& cap = run.art.capture.fast;
    const sampling::pnbs_reconstructor recon(
        cap.even, cap.odd, cap.period_s, cap.t_start,
        run.art.capture.band_fast, d_hat, run.config.lms.recon);

    rng gen(seed);
    std::vector<double> ref(n_eval), est(n_eval);
    const double scale = run.config.auto_range ? run.art.ranging.input_scale
                                               : 1.0;
    for (std::size_t i = 0; i < n_eval; ++i) {
        const double t = gen.uniform(recon.valid_begin(), recon.valid_end());
        ref[i] = scale * run.art.capture_input->value(t);
        est[i] = recon.value(t);
    }
    return relative_rms_error(ref, est);
}

} // namespace sdrbist::benchutil

/// \file abl_probe_count.cpp
/// \brief Ablation: number of probe times N in the skew cost (the paper
///        requires "N > 100" and uses 300).  For each N the LMS estimate is
///        repeated over independent probe draws; the spread of D̂ shows how
///        many probes the cost needs to be reliable.
///
/// Expected shape: estimate spread shrinks ~1/sqrt(N); N = 300 gives
/// comfortably sub-ps repeatability, N < 100 becomes erratic.
#include <iostream>

#include "bench_util.hpp"
#include "calib/lms.hpp"
#include "core/table.hpp"

int main() {
    using namespace sdrbist;

    const auto run = benchutil::run_paper_engine();
    const double d_true = run.art.capture.fast.true_delay_s;
    const auto [lo, hi] = calib::valid_probe_interval(run.art.capture,
                                                      run.config.lms.recon);
    const calib::lms_skew_estimator estimator(run.config.lms);

    std::cout << "Ablation — probe count N (paper: N = 300, 'N > 100')\n\n";
    text_table table({"N", "mean |err| [ps]", "max |err| [ps]",
                      "spread (max-min) [ps]"});
    for (std::size_t n_probes : {30u, 60u, 100u, 300u, 600u}) {
        std::vector<double> estimates;
        for (std::uint64_t trial = 0; trial < 6; ++trial) {
            rng gen(0x9000 + trial * 131);
            const auto probes =
                calib::make_probe_times(gen, n_probes, lo, hi);
            estimates.push_back(
                estimator.estimate(run.art.capture, 120.0 * ps, probes).d_hat);
        }
        double mean_err = 0.0, max_err = 0.0;
        double mn = estimates[0], mx = estimates[0];
        for (double d : estimates) {
            mean_err += std::abs(d - d_true);
            max_err = std::max(max_err, std::abs(d - d_true));
            mn = std::min(mn, d);
            mx = std::max(mx, d);
        }
        mean_err /= static_cast<double>(estimates.size());
        table.add_row({std::to_string(n_probes),
                       text_table::num(mean_err / ps, 3),
                       text_table::num(max_err / ps, 3),
                       text_table::num((mx - mn) / ps, 3)});
    }
    table.print(std::cout);
    std::cout << "\nreading: the paper's N = 300 sits on the flat part of "
                 "the curve; far smaller N raises the estimate spread\n";
    return 0;
}

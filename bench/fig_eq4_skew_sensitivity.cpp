/// \file fig_eq4_skew_sensitivity.cpp
/// \brief Validates the paper's analytic sensitivity result (eq. (4)):
///        ΔF ≈ π·B·(k+1)·ΔD, including the worked example of eq. (5)
///        (fc = 1 GHz, B = 80 MHz, 1 % error -> ΔD ≈ 2 ps).
///
/// Method: ideal (noise-free) dual-stream sampling of an in-band multitone;
/// reconstruct with a deliberately wrong delay D + ΔD; measure the relative
/// RMS error and compare against the analytic bound.
///
/// Expected shape: measured error grows linearly in ΔD with slope close to
/// π·B·(k+1); agreement within a small factor (the bound is first-order).
#include <iostream>

#include "core/random.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "core/units.hpp"
#include "rf/passband.hpp"
#include "sampling/pnbs.hpp"

int main() {
    using namespace sdrbist;
    using namespace sdrbist::sampling;

    // Paper eq. (5) parameters: fc = 1 GHz, fs = B = 80 MHz.
    const band_spec band = band_around(1.0 * GHz, 80.0 * MHz);
    const double t_period = 1.0 / band.bandwidth();
    const double d_true = 200.0 * ps; // stable, near-optimal (1/(4fc)=250)
    const std::size_t n = 1200;

    rng gen(0x5EED);
    std::vector<rf::tone> tones;
    for (int i = 0; i < 6; ++i)
        tones.push_back({gen.uniform(band.f_lo + 8.0 * MHz,
                                     band.f_hi - 8.0 * MHz),
                         gen.uniform(0.2, 1.0), gen.uniform(0.0, two_pi)});
    const rf::multitone_signal sig(std::move(tones),
                                   static_cast<double>(n) * t_period + 1.0 * us);

    std::vector<double> even(n), odd(n);
    for (std::size_t k = 0; k < n; ++k) {
        even[k] = sig.value(static_cast<double>(k) * t_period);
        odd[k] = sig.value(static_cast<double>(k) * t_period + d_true);
    }

    const kohlenberg_kernel kern(band, d_true);
    std::cout << "Eq. (4) validation — band " << band.f_lo / MHz << ".."
              << band.f_hi / MHz << " MHz, k = " << kern.k()
              << ", analytic slope pi*B*(k+1) = "
              << pi * band.bandwidth() * static_cast<double>(kern.k() + 1)
              << " /s\n\n";

    text_table table({"dD [ps]", "measured dF [%]", "analytic dF [%]",
                      "ratio"});
    pnbs_options opt{121, 9.0}; // long filter: truncation below the effect
    for (double dd_ps : {0.25, 0.5, 1.0, 1.59, 2.0, 4.0, 8.0}) {
        const double dd = dd_ps * ps;
        const pnbs_reconstructor recon(even, odd, t_period, 0.0, band,
                                       d_true + dd, opt);
        rng probe(0xCAFE);
        std::vector<double> ref, est;
        for (int i = 0; i < 500; ++i) {
            const double t = probe.uniform(recon.valid_begin(),
                                           recon.valid_end());
            ref.push_back(sig.value(t));
            est.push_back(recon.value(t));
        }
        const double measured = relative_rms_error(ref, est);
        const double analytic = kohlenberg_kernel::error_bound(band, dd);
        table.add_row({text_table::num(dd_ps, 2),
                       text_table::num(100.0 * measured, 3),
                       text_table::num(100.0 * analytic, 3),
                       text_table::num(measured / analytic, 2)});
    }
    table.print(std::cout);

    std::cout << "\npaper eq. (5) example: for dF = 1 %, dD must be <= "
              << kohlenberg_kernel::required_delay_accuracy(band, 0.01) / ps
              << " ps (paper: ~2 ps)\n";
    return 0;
}

/// \file fig3b_pbs_windows.cpp
/// \brief Regenerates paper Fig. 3b: alias-free sampling-rate windows for a
///        B = 30 MHz band at fl = 2 GHz (fH = 2.03 GHz), fs in [60, 100] MHz.
///
/// Expected shape: a sparse comb of narrow windows; near fs = 2B = 60 MHz
/// the windows are a few kHz wide ("the subsampling clock should have a
/// precision of few KHz"), near 90 MHz a few hundred kHz.
#include <iostream>

#include "core/table.hpp"
#include "core/units.hpp"
#include "sampling/pbs.hpp"

int main() {
    using namespace sdrbist;
    using namespace sdrbist::sampling;

    const band_spec band{2.0 * GHz, 2.03 * GHz};
    std::cout << "Fig. 3b — PBS alias-free windows, fl = 2 GHz, B = 30 MHz, "
                 "fs in [60, 100] MHz\n\n";

    const auto windows = alias_free_windows(band, 60.0 * MHz, 100.0 * MHz);
    text_table table({"n", "fs min [MHz]", "fs max [MHz]", "width [kHz]",
                      "clock tolerance [±kHz]"});
    for (const auto& w : windows) {
        table.add_row({std::to_string(w.n),
                       text_table::num(w.rates.lo / MHz, 4),
                       text_table::num(w.rates.hi / MHz, 4),
                       text_table::num(w.rates.width() / kHz, 1),
                       text_table::num(w.rates.width() / 2.0 / kHz, 1)});
    }
    table.print(std::cout);

    std::cout << "\npaper's observations reproduced:\n";
    // Near-minimum-rate window width.
    const auto& lowest = windows.front();
    std::cout << "  near fs = 2B = 60 MHz: window width "
              << lowest.rates.width() / kHz
              << " kHz -> 'precision of few KHz'\n";
    // Window containing ~90 MHz.
    for (const auto& w : windows)
        if (w.rates.lo <= 90.5 * MHz && 90.0 * MHz <= w.rates.hi) {
            std::cout << "  around fs = 90 MHz (n = " << w.n
                      << "): window width " << w.rates.width() / kHz
                      << " kHz -> 'few hundreds of KHz'\n";
        }
    std::cout << "  total alias-free fraction of [60, 100] MHz: ";
    double covered = 0.0;
    for (const auto& w : windows)
        covered += w.rates.width();
    std::cout << 100.0 * covered / (40.0 * MHz) << " %\n";
    return 0;
}

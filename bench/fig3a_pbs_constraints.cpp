/// \file fig3a_pbs_constraints.cpp
/// \brief Regenerates paper Fig. 3a: the alias-free regions of the
///        (fH/B, fs/B) plane for first-order (uniform) bandpass sampling.
///
/// Prints an ASCII map ('.' = alias-free, '#' = aliasing) plus the wedge
/// boundary table.  Expected shape: white (alias-free) wedges indexed by n,
/// pinching towards fs = 2B as fH/B grows; minimum at fs/B = 2.
#include <iostream>

#include "core/table.hpp"
#include "core/units.hpp"
#include "sampling/pbs.hpp"

int main() {
    using namespace sdrbist;
    using namespace sdrbist::sampling;

    std::cout << "Fig. 3a — PBS alias-free map: rows fs/B in [1, 8], "
                 "columns fH/B in [1, 7]\n";
    std::cout << "('.' = alias-free, '#' = aliasing)\n\n";

    const double b = 10.0 * MHz; // scale-free: only ratios matter
    // Header of column ratios.
    std::cout << "fs/B |";
    for (double r = 1.0; r <= 7.0; r += 0.25)
        std::cout << (static_cast<int>(r * 4) % 4 == 0 ? '|' : ' ');
    std::cout << "  (fH/B from 1 to 7, '|' marks integers)\n";

    for (double fs_over_b = 8.0; fs_over_b >= 1.0; fs_over_b -= 0.25) {
        std::cout.width(4);
        std::cout << fs_over_b << " |";
        for (double r = 1.0; r <= 7.0; r += 0.25) {
            const band_spec band{(r - 1.0) * b, r * b};
            const bool free =
                band.f_lo > 0.0 ? is_alias_free(band, fs_over_b * b)
                                : fs_over_b >= 2.0 * r; // lowpass column
            std::cout << (free ? '.' : '#');
        }
        std::cout << '\n';
    }

    std::cout << "\nWedge boundaries at fH/B = 3.5 (example column):\n";
    text_table table({"n", "fs/B min = 2(fH/B)/n", "fs/B max = 2(fl/B)/(n-1)"});
    const band_spec band{2.5 * b, 3.5 * b};
    for (const auto& w : alias_free_windows(band, 0.1 * b, 10.0 * b)) {
        table.add_row({std::to_string(w.n),
                       text_table::num(w.rates.lo / b, 3),
                       w.n == 1 ? std::string("inf")
                                : text_table::num(w.rates.hi / b, 3)});
    }
    table.print(std::cout);

    std::cout << "\ntheoretical minimum rate (straight red line of Fig. 3): "
                 "fs = 2B — achieved by PNBS for any band position\n";
    return 0;
}

/// \file fig5_cost_function.cpp
/// \brief Regenerates paper Fig. 5: the dual-rate cost function versus the
///        delay hypothesis D̂, swept over [120, 260] ps with the paper's
///        setup (QPSK/SRRC stimulus at 1 GHz, two 10-bit ADCs at 90 MHz +
///        45 MHz, 3 ps rms jitter, D = 180 ps, N = 300 probes, 61 taps).
///
/// Expected shape: a single minimum at D̂ = D = 180 ps.
#include <iostream>

#include "bist/engine.hpp"
#include "calib/dual_rate.hpp"
#include "core/table.hpp"
#include "core/units.hpp"

int main() {
    using namespace sdrbist;

    // Paper configuration via the default engine; we only need artefacts.
    bist::bist_config config;
    config.tiadc.quant.full_scale = 2.0;
    const bist::bist_engine engine(config);
    const auto [report, art] = engine.run_verbose();

    std::cout << "Fig. 5 — cost function vs delay estimate D-hat\n";
    std::cout << "setup: fc = 1 GHz, B = 90 MHz, B1 = 45 MHz, D = "
              << art.capture.fast.true_delay_s / ps << " ps (true), N = "
              << art.probe_times.size() << " probes, "
              << config.lms.recon.taps << " taps\n";
    std::cout << "search interval ]0, " << report.max_search_delay_s / ps
              << " ps[  (paper: m = 483 ps)\n\n";

    text_table table({"D-hat [ps]", "cost function"});
    double best_d = 0.0;
    double best_cost = 1e300;
    for (double d = 120.0 * ps; d <= 260.0 * ps + 1e-15; d += 5.0 * ps) {
        const double c =
            calib::skew_cost(art.capture, d, art.probe_times,
                             config.lms.recon);
        if (c < best_cost) {
            best_cost = c;
            best_d = d;
        }
        table.add_row({text_table::num(d / ps, 0), text_table::sci(c, 4)});
    }
    table.print(std::cout);

    std::cout << "\nminimum of the sweep at D-hat = " << best_d / ps
              << " ps (paper: 180 ps)\n";
    return 0;
}

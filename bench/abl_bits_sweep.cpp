/// \file abl_bits_sweep.cpp
/// \brief Ablation: ADC resolution (the paper uses two 10-bit converters).
///        Sweeps converter bits with the jitter held at 3 ps rms.
///
/// Expected shape: below ~8 bits quantisation dominates both the skew
/// estimate and the reconstruction error; from 10 bits on, the 3 ps jitter
/// floor dominates and extra bits buy nothing — supporting the paper's
/// choice of the existing 10-bit Rx converters.
#include <iostream>

#include "bench_util.hpp"
#include "core/table.hpp"

int main() {
    using namespace sdrbist;

    std::cout << "Ablation — ADC resolution (paper: 10 bits, jitter 3 ps)\n\n";
    text_table table({"bits", "|D-hat - D| [ps]", "recon error [%]",
                      "EVM [%]"});
    for (int bits : {6, 8, 10, 12, 14}) {
        const auto run = benchutil::run_paper_engine(
            [&](bist::bist_config& c) { c.tiadc.quant.bits = bits; });
        const double d_true = run.art.capture.fast.true_delay_s;
        table.add_row(
            {std::to_string(bits),
             text_table::num(std::abs(run.report.skew.d_hat - d_true) / ps, 3),
             text_table::num(100.0 * benchutil::reconstruction_rel_error(
                                         run, run.report.skew.d_hat),
                             2),
             text_table::num(run.report.evm.evm_percent(), 2)});
    }
    table.print(std::cout);
    std::cout << "\nreading: with 3 ps jitter the quality saturates at "
                 "~10 bits — reusing the radio's own 10-bit Rx converters "
                 "(the paper's architecture) loses nothing\n";
    return 0;
}

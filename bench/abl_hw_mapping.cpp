/// \file abl_hw_mapping.cpp
/// \brief The paper's §VI future work, quantified: mapping the nonuniform
///        reconstructor to hardware (envelope tables + NCO) — error versus
///        table phase density and coefficient word length, with the ROM
///        footprint a designer would pay.
///
/// Expected shape: with phase interpolation the table density saturates
/// quickly (64 phases suffice); the error floor then tracks the coefficient
/// quantisation ~2^-bits until the jitter/truncation floor takes over.
#include <iostream>

#include "core/random.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "core/units.hpp"
#include "rf/passband.hpp"
#include "sampling/hw_recon.hpp"

int main() {
    using namespace sdrbist;
    using namespace sdrbist::sampling;

    const auto band = band_around(1.0 * GHz, 90.0 * MHz);
    const double period = 1.0 / band.bandwidth();
    const double d = 180.0 * ps;

    rng gen(0x4A2D);
    std::vector<rf::tone> tones;
    for (int i = 0; i < 5; ++i)
        tones.push_back({gen.uniform(band.f_lo + 8.0 * MHz,
                                     band.f_hi - 8.0 * MHz),
                         gen.uniform(0.2, 0.6), gen.uniform(0.0, two_pi)});
    const std::size_t n = 900;
    const rf::multitone_signal sig(
        std::move(tones), static_cast<double>(n) * period + 1.0 * us);
    std::vector<double> even(n), odd(n);
    for (std::size_t k = 0; k < n; ++k) {
        even[k] = sig.value(static_cast<double>(k) * period);
        odd[k] = sig.value(static_cast<double>(k) * period + d);
    }

    auto measure = [&](const hw_recon_options& opt) {
        const hw_pnbs_reconstructor hw(even, odd, period, 0.0, band, d, opt);
        rng probe(0x77);
        std::vector<double> ref, est;
        for (int i = 0; i < 400; ++i) {
            const double t = probe.uniform(hw.valid_begin(), hw.valid_end());
            ref.push_back(sig.value(t));
            est.push_back(hw.value(t));
        }
        return std::pair{relative_rms_error(ref, est), hw.rom_bytes()};
    };

    std::cout << "Hardware mapping ablation (paper SVI future work)\n"
              << "61-tap window, envelope tables + NCO datapath, phase "
                 "interpolation on\n\n";

    text_table table({"phases/T", "coeff bits", "rel. error [%]",
                      "ROM [kB]"});
    for (const std::size_t phases : {16u, 64u, 256u}) {
        for (const int bits : {8, 12, 16, 0}) {
            hw_recon_options opt;
            opt.taps = 61;
            opt.phase_steps = phases;
            opt.coeff_bits = bits;
            const auto [err, rom] = measure(opt);
            table.add_row({std::to_string(phases),
                           bits == 0 ? "float64" : std::to_string(bits),
                           text_table::num(100.0 * err, 4),
                           text_table::num(static_cast<double>(rom) / 1024.0,
                                           1)});
        }
    }
    table.print(std::cout);

    std::cout << "\nreading: 64 phases x 12-16 bit coefficients reach the "
                 "double-precision floor with a few tens of kB of ROM and "
                 "4 NCO sines + 4x61 MACs per output sample — a practical "
                 "FPGA datapath\n";
    return 0;
}

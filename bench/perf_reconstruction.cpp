/// \file perf_reconstruction.cpp
/// \brief google-benchmark micro-benchmarks of the computational hot spots:
///        kernel evaluation, single-point reconstruction, the dual-rate
///        cost, and a full LMS identification.
///
/// The paper notes the LMS technique's "main drawback ... is that it
/// requires a relatively high computational effort" — these numbers
/// quantify that effort for an offline BIST budget.
#include <benchmark/benchmark.h>

#include "adc/tiadc.hpp"
#include "calib/lms.hpp"
#include "core/random.hpp"
#include "core/units.hpp"
#include "rf/passband.hpp"
#include "sampling/pnbs.hpp"

namespace {

using namespace sdrbist;

const auto g_band = sampling::band_around(1.0 * GHz, 90.0 * MHz);

struct fixture {
    calib::dual_rate_capture capture;
    std::vector<double> probes;
    std::shared_ptr<rf::multitone_signal> sig;

    fixture() {
        rng gen(0xBEEF);
        std::vector<rf::tone> tones;
        for (int i = 0; i < 5; ++i)
            tones.push_back({gen.uniform(g_band.centre() - 18.0 * MHz,
                                         g_band.centre() + 18.0 * MHz),
                             gen.uniform(0.1, 0.25),
                             gen.uniform(0.0, two_pi)});
        const std::size_t n = 720;
        sig = std::make_shared<rf::multitone_signal>(
            std::move(tones), static_cast<double>(n) / (90.0 * MHz) + 1.0 * us);

        adc::tiadc_config tc;
        tc.channel_rate_hz = 90.0 * MHz;
        tc.quant.full_scale = 1.5;
        tc.delay_element.step_s = 1.0 * ps;
        adc::bp_tiadc sampler(tc);
        sampler.program_delay(180.0 * ps);
        capture.fast = sampler.capture(*sig, 0.5 * us, n, 0);
        capture.slow = sampler.capture_divided(*sig, 0.5 * us, n / 2, 2, 1);
        capture.band_fast = g_band;
        capture.band_slow =
            sampling::band_around(g_band.centre(), 45.0 * MHz);

        const auto [lo, hi] = calib::valid_probe_interval(capture);
        rng pg(0x77);
        probes = calib::make_probe_times(pg, 300, lo, hi);
    }
};

const fixture& fix() {
    static const fixture f;
    return f;
}

void bm_kernel_eval(benchmark::State& state) {
    const sampling::kohlenberg_kernel kern(g_band, 180.0 * ps);
    double t = 1.3 * ns;
    for (auto _ : state) {
        benchmark::DoNotOptimize(kern.s(t));
        t += 0.11 * ns;
        if (t > 100.0 * ns)
            t = 1.3 * ns;
    }
}
BENCHMARK(bm_kernel_eval);

void bm_reconstruct_point(benchmark::State& state) {
    const auto taps = static_cast<std::size_t>(state.range(0));
    const auto& f = fix();
    const sampling::pnbs_reconstructor recon(
        f.capture.fast.even, f.capture.fast.odd, f.capture.fast.period_s,
        f.capture.fast.t_start, f.capture.band_fast, 180.0 * ps, {taps, 8.0});
    double t = recon.valid_begin();
    const double step = 7.7 * ns;
    for (auto _ : state) {
        benchmark::DoNotOptimize(recon.value(t));
        t += step;
        if (t > recon.valid_end())
            t = recon.valid_begin();
    }
}
BENCHMARK(bm_reconstruct_point)->Arg(21)->Arg(61)->Arg(121);

void bm_skew_cost(benchmark::State& state) {
    const auto& f = fix();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            calib::skew_cost(f.capture, 200.0 * ps, f.probes, {61, 8.0}));
}
BENCHMARK(bm_skew_cost)->Unit(benchmark::kMillisecond);

void bm_full_lms(benchmark::State& state) {
    const auto& f = fix();
    const calib::lms_skew_estimator est{calib::lms_options{}};
    for (auto _ : state)
        benchmark::DoNotOptimize(
            est.estimate(f.capture, 100.0 * ps, f.probes));
}
BENCHMARK(bm_full_lms)->Unit(benchmark::kMillisecond);

void bm_capture(benchmark::State& state) {
    const auto& f = fix();
    adc::tiadc_config tc;
    tc.channel_rate_hz = 90.0 * MHz;
    tc.quant.full_scale = 1.5;
    tc.delay_element.step_s = 1.0 * ps;
    adc::bp_tiadc sampler(tc);
    sampler.program_delay(180.0 * ps);
    std::uint64_t idx = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(sampler.capture(*f.sig, 0.5 * us, 720, idx++));
}
BENCHMARK(bm_capture)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
